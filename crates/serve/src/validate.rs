//! Static experiment validation: reject ill-formed configurations before
//! any event runs.
//!
//! A million-request fleet sweep burns real wall-clock time; discovering
//! mid-run that a fault targets a replica that can never exist, or that an
//! autoscaler's ceiling sits below its floor, wastes all of it — and the
//! legacy `assert!`s only ever surfaced the *first* problem. This module
//! is the shared engine for checking experiment inputs up front:
//!
//! * [`Diagnostic`] — one finding: severity, stable code, the context it
//!   was found in, a message and a hint;
//! * [`ValidationReport`] — an ordered collection of diagnostics with
//!   rustc-style rendering ([`ValidationReport::render`]) and a
//!   fail-with-everything panic ([`ValidationReport::assert_valid`]);
//! * [`Validate`] — the trait configuration types implement to pour their
//!   diagnostics into a shared report.
//!
//! `FleetController::run` validates first and panics with *all* deny
//! diagnostics at once instead of tripping over the first assert;
//! examples and sweep drivers can call
//! [`FleetController::validate`](crate::fleet::FleetController::validate)
//! themselves to render warnings too. Validation is pure analysis: a
//! configuration that passes produces bit-for-bit identical simulator
//! output to the pre-validation behavior (pinned by the
//! `fleet_event_equivalence` and `validation` suites).
//!
//! Diagnostic codes are stable, documented identifiers (`fleet::…`,
//! `fault::…`, `slo::…`, `topology::…`, `placement::…`) so tests and
//! tooling can match on them without parsing prose.

use std::fmt;

/// How severe a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but runnable: the run proceeds (a fault scheduled after
    /// the trace ends, a replica that may never be commissioned).
    Warning,
    /// The configuration cannot produce a meaningful run;
    /// [`ValidationReport::assert_valid`] panics.
    Deny,
}

impl Severity {
    /// Lower-case label for rendering (`"warning"` / `"deny"`).
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Deny => "deny",
        }
    }
}

/// One validation finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity: [`Severity::Deny`] blocks the run, [`Severity::Warning`]
    /// does not.
    pub severity: Severity,
    /// Stable machine-matchable code, e.g. `fleet::ceiling-below-floor`.
    pub code: String,
    /// Where the problem sits, e.g. `FleetConfig` or `fault[2] crash at
    /// 3400.0 ms`.
    pub context: String,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

impl Diagnostic {
    /// A deny-severity diagnostic.
    pub fn deny(
        code: impl Into<String>,
        context: impl Into<String>,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) -> Self {
        Self {
            severity: Severity::Deny,
            code: code.into(),
            context: context.into(),
            message: message.into(),
            hint: hint.into(),
        }
    }

    /// A warning-severity diagnostic.
    pub fn warning(
        code: impl Into<String>,
        context: impl Into<String>,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) -> Self {
        Self {
            severity: Severity::Warning,
            code: code.into(),
            context: context.into(),
            message: message.into(),
            hint: hint.into(),
        }
    }

    /// Render rustc-style:
    /// `deny[fleet::ceiling-below-floor] (FleetConfig): message`
    /// followed by an indented `= help:` line when a hint is present.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}[{}] ({}): {}",
            self.severity.label(),
            self.code,
            self.context,
            self.message
        );
        if !self.hint.is_empty() {
            out.push_str("\n  = help: ");
            out.push_str(&self.hint);
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// An ordered collection of [`Diagnostic`]s — everything wrong with an
/// experiment's inputs, surfaced at once.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidationReport {
    diagnostics: Vec<Diagnostic>,
}

impl ValidationReport {
    /// An empty (passing) report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one diagnostic.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Append every diagnostic of another report.
    pub fn merge(&mut self, other: ValidationReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// All findings, in the order they were recorded (configuration checks
    /// first, then per-fault checks in schedule order — deterministic for a
    /// given input).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of deny-severity findings.
    pub fn deny_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }

    /// Whether the report contains a finding with `code`.
    pub fn has(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// No findings at all — not even warnings.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// No deny-severity findings: the run may proceed (warnings are
    /// advisory).
    pub fn passes(&self) -> bool {
        self.deny_count() == 0
    }

    /// Render every finding, one rustc-style block per diagnostic.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        let denies = self.deny_count();
        let warnings = self.diagnostics.len() - denies;
        out.push_str(&format!("validation: {denies} deny, {warnings} warning(s)"));
        out
    }

    /// Panic with the full rendered report if any deny-severity finding is
    /// present. Unlike an `assert!` chain, every problem is listed at once.
    pub fn assert_valid(&self) {
        if !self.passes() {
            panic!("invalid experiment configuration\n{}", self.render());
        }
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Implemented by configuration types that can check themselves statically.
///
/// Implementations must be pure: no simulator state may be touched, so a
/// configuration that validates cleanly runs bit-for-bit identically to one
/// that was never validated.
pub trait Validate {
    /// Pour this value's findings into `report`.
    fn validate_into(&self, report: &mut ValidationReport);

    /// Convenience: collect this value's findings into a fresh report.
    fn validation(&self) -> ValidationReport {
        let mut report = ValidationReport::new();
        self.validate_into(&mut report);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostics_render_rustc_style() {
        let d = Diagnostic::deny(
            "fleet::ceiling-below-floor",
            "FleetConfig",
            "max_replicas (1) is below min_replicas (2)",
            "raise max_replicas or lower min_replicas",
        );
        let rendered = d.render();
        assert!(rendered.starts_with("deny[fleet::ceiling-below-floor] (FleetConfig):"));
        assert!(rendered.contains("= help: raise max_replicas"));
        assert_eq!(format!("{d}"), rendered);
    }

    #[test]
    fn report_surfaces_everything_at_once() {
        let mut report = ValidationReport::new();
        report.push(Diagnostic::deny("a::b", "ctx", "first", ""));
        report.push(Diagnostic::warning("c::d", "ctx", "second", "hint"));
        assert_eq!(report.diagnostics().len(), 2);
        assert_eq!(report.deny_count(), 1);
        assert!(report.has("a::b"));
        assert!(report.has("c::d"));
        assert!(!report.has("e::f"));
        assert!(!report.passes());
        assert!(!report.is_clean());
        let rendered = report.render();
        assert!(rendered.contains("first"));
        assert!(rendered.contains("second"));
        assert!(rendered.contains("validation: 1 deny, 1 warning(s)"));
    }

    #[test]
    fn warnings_alone_pass_but_are_not_clean() {
        let mut report = ValidationReport::new();
        report.push(Diagnostic::warning("x::y", "ctx", "advisory", ""));
        assert!(report.passes());
        assert!(!report.is_clean());
        report.assert_valid(); // must not panic
    }

    #[test]
    #[should_panic(expected = "invalid experiment configuration")]
    fn assert_valid_panics_on_a_deny() {
        let mut report = ValidationReport::new();
        report.push(Diagnostic::deny("x::y", "ctx", "broken", ""));
        report.assert_valid();
    }

    #[test]
    fn merge_concatenates_in_order() {
        let mut a = ValidationReport::new();
        a.push(Diagnostic::deny("a::a", "ctx", "m", ""));
        let mut b = ValidationReport::new();
        b.push(Diagnostic::warning("b::b", "ctx", "m", ""));
        a.merge(b);
        let codes: Vec<&str> = a.diagnostics().iter().map(|d| d.code.as_str()).collect();
        assert_eq!(codes, vec!["a::a", "b::b"]);
    }
}
