//! Backend-equivalence suite: the `SingleGpuBackend`-driven scheduler must
//! reproduce the pre-refactor scheduler bit for bit.
//!
//! `legacy` below is a frozen, line-for-line copy of the scheduler as it
//! existed before the `ExecutionBackend` refactor (inline cost model,
//! `TopKRouter` rebuilt every step, literal fp16 KV width). Running both on
//! shared seeded traces and asserting exact `f64` equality proves the
//! refactor moved the cost model without changing a single predicted
//! number.

use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::engines::EngineKind;
use samoyeds_serve::{Scheduler, SchedulerConfig, SimulationResult, TraceConfig};

/// The pre-refactor scheduler, frozen for comparison.
mod legacy {
    use samoyeds_gpu_sim::DeviceSpec;
    use samoyeds_moe::attention::attention_time_ms;
    use samoyeds_moe::config::MoeModelConfig;
    use samoyeds_moe::engines::{Engine, EngineKind};
    use samoyeds_moe::router::TopKRouter;
    use samoyeds_serve::batch::{build_step, StepBatch};
    use samoyeds_serve::request::{CompletedRequest, Request, RunningRequest};
    use samoyeds_serve::{MemoryModel, SchedulerConfig};
    use std::collections::VecDeque;

    pub struct LegacyResult {
        pub completed: Vec<CompletedRequest>,
        pub rejected: Vec<Request>,
        pub admitted: usize,
        pub step_times_ms: Vec<f64>,
        pub step_memory_bytes: Vec<f64>,
        pub makespan_ms: f64,
        pub peak_memory_bytes: f64,
        pub budget_bytes: f64,
        pub supported: bool,
    }

    pub struct LegacyScheduler {
        device: DeviceSpec,
        config: MoeModelConfig,
        engine: Engine,
        memory: MemoryModel,
        scfg: SchedulerConfig,
    }

    impl LegacyScheduler {
        pub fn new(
            device: DeviceSpec,
            config: MoeModelConfig,
            engine_kind: EngineKind,
            scfg: SchedulerConfig,
        ) -> Self {
            Self {
                engine: Engine::new(engine_kind, device.clone()),
                memory: MemoryModel::new(&device, engine_kind, &config),
                device,
                config,
                scfg,
            }
        }

        /// Verbatim pre-refactor step cost: router rebuilt per step, literal
        /// `2.0` fp16 KV byte width.
        fn step_time_ms(
            &self,
            batch: &StepBatch,
            running: &[RunningRequest],
            step_index: u64,
        ) -> f64 {
            let step_tokens = batch.total_tokens();
            let plan = TopKRouter::for_config(&self.config, self.scfg.routing_seed ^ step_index)
                .route(step_tokens);
            let moe_ms = self
                .engine
                .moe_layer_cost(&self.config, step_tokens, &plan)
                .time_ms;

            let mut attention_ms = 0.0;
            for &(i, chunk) in &batch.prefill {
                let before = running[i].prefilled;
                let after = (before + chunk).min(self.config.max_seq_len);
                let inc = attention_time_ms(&self.device, &self.config, after, self.scfg.attention)
                    - attention_time_ms(
                        &self.device,
                        &self.config,
                        before.max(1),
                        self.scfg.attention,
                    );
                attention_ms += inc.max(0.0);
            }
            let bandwidth = self.device.mem_bandwidth_gbps * 1e9;
            for &i in &batch.decode {
                let ctx = running[i].context_tokens().min(self.config.max_seq_len);
                let kv_bytes = 2.0 * ctx as f64 * self.config.hidden_size as f64 * 2.0;
                attention_ms += kv_bytes / bandwidth * 1e3 + 2.0e-3;
            }

            let h = self.config.hidden_size as f64;
            let other_ms = 4.0 * step_tokens as f64 * h * 2.0 / bandwidth * 1e3 + 0.02;

            (moe_ms + attention_ms + other_ms) * self.config.num_layers as f64
                + self.scfg.step_overhead_ms
        }

        /// Verbatim pre-refactor run loop.
        pub fn run(&self, trace: &[Request]) -> LegacyResult {
            let limits = self.scfg.limits;
            let mut result = LegacyResult {
                completed: Vec::new(),
                rejected: Vec::new(),
                admitted: 0,
                step_times_ms: Vec::new(),
                step_memory_bytes: Vec::new(),
                makespan_ms: 0.0,
                peak_memory_bytes: 0.0,
                budget_bytes: self.memory.budget_bytes(),
                supported: self.engine.supports(&self.config),
            };
            if !result.supported {
                result.rejected = trace.to_vec();
                return result;
            }

            let mut queue: VecDeque<Request> = trace.to_vec().into();
            let mut running: Vec<RunningRequest> = Vec::new();
            let mut reserved_tokens: usize = 0;
            let mut clock_ms = 0.0f64;
            let mut step_index = 0u64;

            loop {
                while running.len() < limits.max_running {
                    let Some(front) = queue.front() else { break };
                    if front.arrival_ms > clock_ms {
                        break;
                    }
                    let candidate = reserved_tokens + front.total_tokens();
                    if self.memory.fits(candidate, limits.max_batched_tokens) {
                        let request = queue.pop_front().expect("front exists");
                        reserved_tokens = candidate;
                        result.admitted += 1;
                        running.push(RunningRequest::new(request, clock_ms));
                    } else if running.is_empty() {
                        result
                            .rejected
                            .push(queue.pop_front().expect("front exists"));
                    } else {
                        break;
                    }
                }

                if running.is_empty() {
                    match queue.front() {
                        None => break,
                        Some(next) => {
                            clock_ms = clock_ms.max(next.arrival_ms);
                            continue;
                        }
                    }
                }

                let batch = build_step(&running, &limits);
                let time_ms = self.step_time_ms(&batch, &running, step_index);
                clock_ms += time_ms;
                step_index += 1;

                for &(i, chunk) in &batch.prefill {
                    let r = &mut running[i];
                    r.prefilled += chunk;
                    if r.prefilled == r.request.prompt_len {
                        r.decoded += 1;
                        r.first_token_ms = Some(clock_ms);
                    }
                }
                for &i in &batch.decode {
                    let r = &mut running[i];
                    r.decoded += 1;
                    if r.first_token_ms.is_none() {
                        r.first_token_ms = Some(clock_ms);
                    }
                }

                let mut still_running = Vec::with_capacity(running.len());
                for r in running.drain(..) {
                    if r.decoded >= r.request.output_len {
                        reserved_tokens -= r.request.total_tokens();
                        result.completed.push(CompletedRequest {
                            request: r.request,
                            admitted_ms: r.admitted_ms,
                            first_token_ms: r.first_token_ms.unwrap_or(clock_ms),
                            finished_ms: clock_ms,
                        });
                    } else {
                        still_running.push(r);
                    }
                }
                running = still_running;

                let kv_tokens: usize = running.iter().map(|r| r.context_tokens()).sum();
                let memory_bytes = self.memory.footprint_bytes(kv_tokens, batch.total_tokens());
                result.peak_memory_bytes = result.peak_memory_bytes.max(memory_bytes);
                result.step_times_ms.push(time_ms);
                result.step_memory_bytes.push(memory_bytes);

                assert!(step_index < 10_000_000, "legacy step safety cap");
            }

            result.makespan_ms = clock_ms;
            result
        }
    }
}

fn assert_exact_match(new: &SimulationResult, old: &legacy::LegacyResult) {
    assert_eq!(new.supported, old.supported);
    assert_eq!(new.admitted, old.admitted);
    // Bit-exact f64 comparisons throughout: the refactor must not perturb a
    // single floating-point operation.
    assert_eq!(new.budget_bytes, old.budget_bytes);
    assert_eq!(new.makespan_ms, old.makespan_ms);
    assert_eq!(new.peak_memory_bytes, old.peak_memory_bytes);
    assert_eq!(new.steps.len(), old.step_times_ms.len());
    for (i, step) in new.steps.iter().enumerate() {
        assert_eq!(step.time_ms, old.step_times_ms[i], "step {i} time");
        assert_eq!(step.memory_bytes, old.step_memory_bytes[i], "step {i} mem");
        assert_eq!(step.collective_ms, 0.0, "single GPU pays no collectives");
    }
    assert_eq!(new.completed.len(), old.completed.len());
    for (n, o) in new.completed.iter().zip(old.completed.iter()) {
        assert_eq!(n.request, o.request);
        assert_eq!(n.admitted_ms, o.admitted_ms);
        assert_eq!(n.first_token_ms, o.first_token_ms);
        assert_eq!(n.finished_ms, o.finished_ms);
    }
    assert_eq!(new.rejected.len(), old.rejected.len());
    for (n, o) in new.rejected.iter().zip(old.rejected.iter()) {
        assert_eq!(n, o);
    }
}

#[test]
fn single_gpu_backend_reproduces_the_pre_refactor_scheduler_exactly() {
    let traces = [
        TraceConfig {
            num_requests: 24,
            arrival_rate_rps: 12.0,
            prompt_len_range: (32, 256),
            output_len_range: (4, 24),
            seed: 7,
        },
        TraceConfig {
            num_requests: 40,
            arrival_rate_rps: 4.0,
            prompt_len_range: (64, 512),
            output_len_range: (16, 64),
            seed: 42,
        },
    ];
    let cases = [
        (DeviceSpec::a100_40g(), MoeModelConfig::qwen2_moe()),
        (DeviceSpec::a100_40g(), MoeModelConfig::deepseek_moe()),
        (DeviceSpec::rtx4070_super(), MoeModelConfig::qwen2_moe()),
    ];
    for (device, model) in &cases {
        for trace_cfg in &traces {
            let trace = trace_cfg.generate();
            for engine in [
                EngineKind::Samoyeds,
                EngineKind::Transformers,
                EngineKind::VllmDs,
            ] {
                let scfg = SchedulerConfig::default();
                let new = Scheduler::new(device.clone(), model.clone(), engine, scfg).run(&trace);
                let old = legacy::LegacyScheduler::new(device.clone(), model.clone(), engine, scfg)
                    .run(&trace);
                assert_exact_match(&new, &old);
            }
        }
    }
}

#[test]
fn equivalence_holds_under_tight_limits_and_custom_seeds() {
    use samoyeds_serve::BatchLimits;
    let scfg = SchedulerConfig {
        limits: BatchLimits {
            max_batched_tokens: 96,
            max_running: 3,
            prefill_chunk: 48,
        },
        routing_seed: 1234,
        ..SchedulerConfig::default()
    };
    let trace = TraceConfig {
        num_requests: 20,
        arrival_rate_rps: 20.0,
        prompt_len_range: (16, 200),
        output_len_range: (2, 12),
        seed: 99,
    }
    .generate();
    let device = DeviceSpec::a100_40g();
    let model = MoeModelConfig::qwen2_moe();
    let new = Scheduler::new(device.clone(), model.clone(), EngineKind::Samoyeds, scfg).run(&trace);
    let old = legacy::LegacyScheduler::new(device, model, EngineKind::Samoyeds, scfg).run(&trace);
    assert_exact_match(&new, &old);
}

#[test]
fn unsupported_engines_reject_the_whole_trace_in_both_paths() {
    // OpenMoE's ReLU activation is NS for vLLM-DS: both schedulers must
    // reject everything without simulating a step.
    let trace = TraceConfig {
        num_requests: 5,
        ..TraceConfig::default()
    }
    .generate();
    let device = DeviceSpec::a100_40g();
    let model = MoeModelConfig::openmoe_34b();
    let scfg = SchedulerConfig::default();
    let new = Scheduler::new(device.clone(), model.clone(), EngineKind::VllmDs, scfg).run(&trace);
    let old = legacy::LegacyScheduler::new(device, model, EngineKind::VllmDs, scfg).run(&trace);
    assert!(!new.supported);
    assert_exact_match(&new, &old);
}
