//! Co-located equivalence suite for prefill/decode disaggregation.
//!
//! The ratio-0 endpoint of the disaggregation sweep — no decode pods, so
//! the KV handoff is disabled — must reproduce the plain co-located
//! `FleetController` bit for bit: every `FleetMetrics` field, every latency
//! percentile, every scale-event reason string, every per-replica
//! breakdown. This is the same discipline `fault_equivalence.rs` applies to
//! the chaos layer: an armed-but-idle subsystem must be free. The scenarios
//! mirror that suite (fixed fleets, heterogeneous round-robin, SLO
//! autoscaling with warm-up) so the pin covers the same surface.

use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::engines::EngineKind;
use samoyeds_serve::{
    BurstPhase, BurstyTraceConfig, DisaggregationConfig, DispatchPolicy, ExecutionBackend,
    FleetConfig, FleetController, FleetMetrics, KvLink, MemoryModel, Request, SchedulerConfig,
    SingleGpuBackend, SloAutoscaler, TraceConfig,
};

fn single(
    device: DeviceSpec,
    engine: EngineKind,
    scfg: &SchedulerConfig,
) -> Box<dyn ExecutionBackend> {
    Box::new(SingleGpuBackend::new(
        device,
        &MoeModelConfig::qwen2_moe(),
        engine,
        scfg,
    ))
}

fn poisson_trace() -> Vec<Request> {
    TraceConfig {
        num_requests: 48,
        arrival_rate_rps: 30.0,
        prompt_len_range: (32, 384),
        output_len_range: (4, 32),
        seed: 23,
    }
    .generate()
}

fn bursty_trace() -> Vec<Request> {
    BurstyTraceConfig {
        phases: vec![
            BurstPhase {
                arrival_rate_rps: 2.0,
                num_requests: 8,
            },
            BurstPhase {
                arrival_rate_rps: 150.0,
                num_requests: 60,
            },
            BurstPhase {
                arrival_rate_rps: 2.0,
                num_requests: 8,
            },
        ],
        prompt_len_range: (64, 256),
        output_len_range: (16, 48),
        seed: 17,
    }
    .generate()
}

/// A disaggregation config whose decode side is empty — every replica is a
/// prefill pod and the handoff machinery never engages.
fn ratio_zero(prefill: Vec<usize>) -> DisaggregationConfig {
    DisaggregationConfig::uniform(
        prefill,
        Vec::new(),
        MemoryModel::new(
            &DeviceSpec::a100_40g(),
            EngineKind::Samoyeds,
            &MoeModelConfig::qwen2_moe(),
        ),
        KvLink {
            latency_us: 5.0,
            bandwidth_gbps: 50.0,
        },
    )
}

/// Exact `f64` / structural equality on every `FleetMetrics` field.
fn assert_metrics_equal(disagg: &FleetMetrics, plain: &FleetMetrics) {
    assert!(disagg.faults.is_empty());
    assert!(disagg.failed_ids.is_empty());
    assert_eq!(disagg.engine, plain.engine);
    assert_eq!(disagg.replicas, plain.replicas);
    assert_eq!(disagg.completed, plain.completed);
    assert_eq!(disagg.rejected, plain.rejected);
    assert_eq!(disagg.output_tokens_per_s, plain.output_tokens_per_s);
    assert_eq!(disagg.request_latency, plain.request_latency);
    assert_eq!(disagg.ttft, plain.ttft);
    assert_eq!(disagg.tpot, plain.tpot);
    assert_eq!(disagg.makespan_ms, plain.makespan_ms);
    assert_eq!(disagg.unroutable_ids, plain.unroutable_ids);
    assert_eq!(disagg.drain_incomplete, plain.drain_incomplete);
    assert_eq!(
        disagg.drain_incomplete_replicas,
        plain.drain_incomplete_replicas
    );
    assert_eq!(disagg.scale_events.len(), plain.scale_events.len());
    for (a, b) in disagg.scale_events.iter().zip(&plain.scale_events) {
        assert_eq!(a.at_ms, b.at_ms);
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.replicas_after, b.replicas_after);
        assert_eq!(a.reason, b.reason);
    }
    assert_eq!(disagg.per_replica.len(), plain.per_replica.len());
    for (a, b) in disagg.per_replica.iter().zip(&plain.per_replica) {
        assert_eq!(a.description, b.description);
        assert_eq!(a.engine, b.engine);
        assert_eq!(a.spawned_ms, b.spawned_ms);
        assert_eq!(a.ready_ms, b.ready_ms);
        assert_eq!(a.retired_ms, b.retired_ms);
        assert_eq!(a.assigned, b.assigned);
        assert_eq!(a.assigned_ids, b.assigned_ids);
        assert_eq!(a.metrics.engine, b.metrics.engine);
        assert_eq!(a.metrics.completed, b.metrics.completed);
        assert_eq!(a.metrics.rejected, b.metrics.rejected);
        assert_eq!(a.metrics.output_tokens_per_s, b.metrics.output_tokens_per_s);
        assert_eq!(
            a.metrics.processed_tokens_per_s,
            b.metrics.processed_tokens_per_s
        );
        assert_eq!(a.metrics.request_latency, b.metrics.request_latency);
        assert_eq!(a.metrics.ttft, b.metrics.ttft);
        assert_eq!(a.metrics.tpot, b.metrics.tpot);
        assert_eq!(a.metrics.makespan_ms, b.metrics.makespan_ms);
        assert_eq!(a.metrics.peak_memory_gib, b.metrics.peak_memory_gib);
        assert_eq!(a.metrics.budget_gib, b.metrics.budget_gib);
        assert_eq!(a.metrics.servable, b.metrics.servable);
    }
}

#[test]
fn ratio_zero_on_a_fixed_fleet_matches_the_plain_controller() {
    let scfg = SchedulerConfig::default();
    let config = FleetConfig::default();
    for trace in [poisson_trace(), bursty_trace()] {
        let plain = FleetController::new(config)
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .run(&trace);
        let disagg = FleetController::new(config)
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_disaggregation(ratio_zero(vec![0, 1]))
            .run(&trace);
        assert_metrics_equal(&disagg, &plain);
    }
}

#[test]
fn ratio_zero_on_a_heterogeneous_round_robin_fleet_matches_the_plain_controller() {
    let scfg = SchedulerConfig::default();
    let config = FleetConfig {
        policy: DispatchPolicy::RoundRobin,
        ..FleetConfig::default()
    };
    let build = || {
        vec![
            single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg),
            single(DeviceSpec::rtx4070_super(), EngineKind::Samoyeds, &scfg),
            single(DeviceSpec::rtx4070_super(), EngineKind::Transformers, &scfg),
        ]
    };
    for trace in [poisson_trace(), bursty_trace()] {
        let mut plain_controller = FleetController::new(config);
        for backend in build() {
            plain_controller = plain_controller.with_replica(backend);
        }
        let plain = plain_controller.run(&trace);
        let mut disagg_controller =
            FleetController::new(config).with_disaggregation(ratio_zero(vec![0, 1, 2]));
        for backend in build() {
            disagg_controller = disagg_controller.with_replica(backend);
        }
        let disagg = disagg_controller.run(&trace);
        assert_metrics_equal(&disagg, &plain);
    }
}

#[test]
fn ratio_zero_on_an_autoscaled_fleet_matches_the_plain_controller() {
    // Scale-outs, warm-up completions, drains and retirements must land at
    // the same instants with the same reason strings even with the
    // disaggregation machinery armed (but transfer-disabled).
    let scfg = SchedulerConfig::default();
    let config = FleetConfig {
        warmup_ms: 500.0,
        max_replicas: 4,
        ..FleetConfig::default()
    };
    for trace in [poisson_trace(), bursty_trace()] {
        let plain = FleetController::new(config)
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_factory(move || single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_autoscaler(SloAutoscaler::new(400.0))
            .run(&trace);
        let disagg = FleetController::new(config)
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_factory(move || single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_autoscaler(SloAutoscaler::new(400.0))
            .with_disaggregation(ratio_zero(vec![0]))
            .run(&trace);
        assert_metrics_equal(&disagg, &plain);
    }
}
