//! No-faults equivalence suite for the fault-injection subsystem.
//!
//! Installing the chaos layer must be free when nothing fails: a
//! `FleetController` configured with `FaultSchedule::none()` and the default
//! `RecoveryPolicy` has to reproduce the plain controller bit for bit —
//! every `FleetMetrics` field, every latency percentile, every scale-event
//! reason string, every per-replica breakdown. The scenarios mirror the
//! `fleet_event_equivalence` suite (fixed fleets, heterogeneous round-robin,
//! SLO autoscaling with warm-up, zero-warmup frozen-counter dispatch) so the
//! pin covers the same surface the event-core refactor pinned. Same
//! discipline as `backend_equivalence.rs` and `fleet_event_equivalence.rs`.

use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::engines::EngineKind;
use samoyeds_serve::{
    BurstPhase, BurstyTraceConfig, DispatchPolicy, ExecutionBackend, FaultSchedule, FleetConfig,
    FleetController, FleetMetrics, RecoveryPolicy, Request, SchedulerConfig, SingleGpuBackend,
    SloAutoscaler, TraceConfig,
};

fn single(
    device: DeviceSpec,
    engine: EngineKind,
    scfg: &SchedulerConfig,
) -> Box<dyn ExecutionBackend> {
    Box::new(SingleGpuBackend::new(
        device,
        &MoeModelConfig::qwen2_moe(),
        engine,
        scfg,
    ))
}

fn poisson_trace() -> Vec<Request> {
    TraceConfig {
        num_requests: 48,
        arrival_rate_rps: 30.0,
        prompt_len_range: (32, 384),
        output_len_range: (4, 32),
        seed: 23,
    }
    .generate()
}

fn bursty_trace() -> Vec<Request> {
    BurstyTraceConfig {
        phases: vec![
            BurstPhase {
                arrival_rate_rps: 2.0,
                num_requests: 8,
            },
            BurstPhase {
                arrival_rate_rps: 150.0,
                num_requests: 60,
            },
            BurstPhase {
                arrival_rate_rps: 2.0,
                num_requests: 8,
            },
        ],
        prompt_len_range: (64, 256),
        output_len_range: (16, 48),
        seed: 17,
    }
    .generate()
}

/// Exact `f64` / structural equality on every `FleetMetrics` field, plus
/// the invariant that a no-faults run records no fault bookkeeping at all.
fn assert_metrics_equal(with_chaos: &FleetMetrics, plain: &FleetMetrics) {
    assert!(with_chaos.faults.is_empty());
    assert!(with_chaos.failed_ids.is_empty());
    assert_eq!(with_chaos.engine, plain.engine);
    assert_eq!(with_chaos.replicas, plain.replicas);
    assert_eq!(with_chaos.completed, plain.completed);
    assert_eq!(with_chaos.rejected, plain.rejected);
    assert_eq!(with_chaos.output_tokens_per_s, plain.output_tokens_per_s);
    assert_eq!(with_chaos.request_latency, plain.request_latency);
    assert_eq!(with_chaos.ttft, plain.ttft);
    assert_eq!(with_chaos.tpot, plain.tpot);
    assert_eq!(with_chaos.makespan_ms, plain.makespan_ms);
    assert_eq!(with_chaos.unroutable_ids, plain.unroutable_ids);
    assert_eq!(with_chaos.drain_incomplete, plain.drain_incomplete);
    assert_eq!(
        with_chaos.drain_incomplete_replicas,
        plain.drain_incomplete_replicas
    );
    assert_eq!(with_chaos.scale_events.len(), plain.scale_events.len());
    for (a, b) in with_chaos.scale_events.iter().zip(&plain.scale_events) {
        assert_eq!(a.at_ms, b.at_ms);
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.replicas_after, b.replicas_after);
        assert_eq!(a.reason, b.reason);
    }
    assert_eq!(with_chaos.per_replica.len(), plain.per_replica.len());
    for (a, b) in with_chaos.per_replica.iter().zip(&plain.per_replica) {
        assert_eq!(a.description, b.description);
        assert_eq!(a.engine, b.engine);
        assert_eq!(a.spawned_ms, b.spawned_ms);
        assert_eq!(a.ready_ms, b.ready_ms);
        assert_eq!(a.retired_ms, b.retired_ms);
        assert_eq!(a.assigned, b.assigned);
        assert_eq!(a.assigned_ids, b.assigned_ids);
        assert_eq!(a.metrics.engine, b.metrics.engine);
        assert_eq!(a.metrics.completed, b.metrics.completed);
        assert_eq!(a.metrics.rejected, b.metrics.rejected);
        assert_eq!(a.metrics.output_tokens_per_s, b.metrics.output_tokens_per_s);
        assert_eq!(
            a.metrics.processed_tokens_per_s,
            b.metrics.processed_tokens_per_s
        );
        assert_eq!(a.metrics.request_latency, b.metrics.request_latency);
        assert_eq!(a.metrics.ttft, b.metrics.ttft);
        assert_eq!(a.metrics.tpot, b.metrics.tpot);
        assert_eq!(a.metrics.makespan_ms, b.metrics.makespan_ms);
        assert_eq!(a.metrics.peak_memory_gib, b.metrics.peak_memory_gib);
        assert_eq!(a.metrics.budget_gib, b.metrics.budget_gib);
        assert_eq!(a.metrics.servable, b.metrics.servable);
    }
}

#[test]
fn empty_schedule_on_a_fixed_fleet_matches_the_plain_controller() {
    let scfg = SchedulerConfig::default();
    let config = FleetConfig::default();
    for trace in [poisson_trace(), bursty_trace()] {
        let plain = FleetController::new(config)
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .run(&trace);
        let with_chaos = FleetController::new(config)
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_faults(FaultSchedule::none(), RecoveryPolicy::default())
            .run(&trace);
        assert_metrics_equal(&with_chaos, &plain);
    }
}

#[test]
fn empty_schedule_on_a_heterogeneous_round_robin_fleet_matches_the_plain_controller() {
    let scfg = SchedulerConfig::default();
    let config = FleetConfig {
        policy: DispatchPolicy::RoundRobin,
        ..FleetConfig::default()
    };
    let build = || {
        vec![
            single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg),
            single(DeviceSpec::rtx4070_super(), EngineKind::Samoyeds, &scfg),
            single(DeviceSpec::rtx4070_super(), EngineKind::Transformers, &scfg),
        ]
    };
    for trace in [poisson_trace(), bursty_trace()] {
        let mut plain_controller = FleetController::new(config);
        for backend in build() {
            plain_controller = plain_controller.with_replica(backend);
        }
        let plain = plain_controller.run(&trace);
        let mut chaos_controller = FleetController::new(config)
            .with_faults(FaultSchedule::none(), RecoveryPolicy::default());
        for backend in build() {
            chaos_controller = chaos_controller.with_replica(backend);
        }
        let with_chaos = chaos_controller.run(&trace);
        assert_metrics_equal(&with_chaos, &plain);
    }
}

#[test]
fn empty_schedule_on_an_autoscaled_fleet_matches_the_plain_controller() {
    // Scale-outs, warm-up completions, drains and retirements must land at
    // the same instants with the same reason strings even with the fault
    // machinery armed (but idle).
    let scfg = SchedulerConfig::default();
    let config = FleetConfig {
        warmup_ms: 500.0,
        max_replicas: 4,
        ..FleetConfig::default()
    };
    for trace in [poisson_trace(), bursty_trace()] {
        let plain = FleetController::new(config)
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_factory(move || single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_autoscaler(SloAutoscaler::new(400.0))
            .run(&trace);
        let with_chaos = FleetController::new(config)
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_factory(move || single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_autoscaler(SloAutoscaler::new(400.0))
            .with_faults(
                FaultSchedule::none(),
                RecoveryPolicy::readmit_and_replace(25.0),
            )
            .run(&trace);
        assert_metrics_equal(&with_chaos, &plain);
    }
}

#[test]
fn empty_schedule_with_zero_warmup_and_frozen_policy_matches_the_plain_controller() {
    let scfg = SchedulerConfig::default();
    let config = FleetConfig {
        policy: DispatchPolicy::LeastOutstandingTokensFrozen,
        tick_ms: 250.0,
        warmup_ms: 0.0,
        max_replicas: 3,
        ..FleetConfig::default()
    };
    for trace in [poisson_trace(), bursty_trace()] {
        let plain = FleetController::new(config)
            .with_replica(single(
                DeviceSpec::rtx4070_super(),
                EngineKind::Samoyeds,
                &scfg,
            ))
            .with_factory(move || single(DeviceSpec::rtx4070_super(), EngineKind::Samoyeds, &scfg))
            .with_autoscaler(SloAutoscaler::new(900.0))
            .run(&trace);
        let with_chaos = FleetController::new(config)
            .with_replica(single(
                DeviceSpec::rtx4070_super(),
                EngineKind::Samoyeds,
                &scfg,
            ))
            .with_factory(move || single(DeviceSpec::rtx4070_super(), EngineKind::Samoyeds, &scfg))
            .with_autoscaler(SloAutoscaler::new(900.0))
            .with_faults(FaultSchedule::none(), RecoveryPolicy::fail_fast())
            .run(&trace);
        assert_metrics_equal(&with_chaos, &plain);
    }
}
