//! Compatibility-shim equivalence suite: the offline `dispatch_trace` /
//! `ReplicaFleet` path must reproduce the pre-control-plane fleet results
//! bit for bit.
//!
//! `legacy` below freezes the dispatcher and the fleet aggregation exactly
//! as they existed before the online `serve::fleet` redesign: round-robin
//! and the accumulate-forever least-outstanding counter, one `Scheduler`
//! run per shard, pooled latency summaries over the shard results. Running
//! both on shared seeded traces and asserting exact `f64` equality proves
//! the redesign kept the static path intact while the default
//! `ReplicaFleet` policy maps onto the frozen variant.

use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::engines::EngineKind;
use samoyeds_serve::{
    dispatch_trace, DispatchPolicy, ReplicaFleet, Scheduler, SchedulerConfig, TraceConfig,
};

/// The pre-redesign dispatcher and fleet aggregation, frozen for comparison.
mod legacy {
    use samoyeds_serve::metrics::{latency_summary, LatencySummary};
    use samoyeds_serve::request::Request;
    use samoyeds_serve::scheduler::SimulationResult;

    /// Verbatim pre-redesign `dispatch_trace`: round-robin, or an
    /// outstanding-token counter that only ever grows.
    pub fn dispatch_trace_frozen(
        trace: &[Request],
        replicas: usize,
        least_outstanding: bool,
    ) -> Vec<Vec<Request>> {
        assert!(replicas >= 1);
        let mut shards: Vec<Vec<Request>> = vec![Vec::new(); replicas];
        if least_outstanding {
            let mut outstanding = vec![0usize; replicas];
            for r in trace {
                let target = (0..replicas)
                    .min_by_key(|&g| outstanding[g])
                    .expect("replicas >= 1");
                outstanding[target] += r.total_tokens();
                shards[target].push(*r);
            }
        } else {
            for (i, r) in trace.iter().enumerate() {
                shards[i % replicas].push(*r);
            }
        }
        shards
    }

    /// Verbatim pre-redesign fleet aggregation over per-shard results.
    pub struct LegacyFleetMetrics {
        pub completed: usize,
        pub rejected: usize,
        pub output_tokens_per_s: f64,
        pub request_latency: LatencySummary,
        pub ttft: LatencySummary,
        pub tpot: LatencySummary,
        pub makespan_ms: f64,
    }

    pub fn aggregate(results: &[SimulationResult]) -> LegacyFleetMetrics {
        let latencies: Vec<f64> = results
            .iter()
            .flat_map(|r| r.completed.iter().map(|c| c.latency_ms()))
            .collect();
        let ttfts: Vec<f64> = results
            .iter()
            .flat_map(|r| r.completed.iter().map(|c| c.ttft_ms()))
            .collect();
        let tpots: Vec<f64> = results
            .iter()
            .flat_map(|r| r.completed.iter().filter_map(|c| c.tpot_ms()))
            .collect();
        let makespan_ms = results.iter().map(|r| r.makespan_ms).fold(0.0, f64::max);
        let output_tokens: usize = results.iter().map(|r| r.output_tokens()).sum();
        LegacyFleetMetrics {
            completed: results.iter().map(|r| r.completed.len()).sum(),
            rejected: results.iter().map(|r| r.rejected.len()).sum(),
            output_tokens_per_s: if makespan_ms > 0.0 {
                output_tokens as f64 / (makespan_ms / 1e3)
            } else {
                0.0
            },
            request_latency: latency_summary(&latencies),
            ttft: latency_summary(&ttfts),
            tpot: latency_summary(&tpots),
            makespan_ms,
        }
    }
}

fn traces() -> Vec<Vec<samoyeds_serve::Request>> {
    [
        TraceConfig {
            num_requests: 24,
            arrival_rate_rps: 16.0,
            prompt_len_range: (32, 256),
            output_len_range: (4, 16),
            seed: 3,
        },
        TraceConfig {
            num_requests: 40,
            arrival_rate_rps: 6.0,
            prompt_len_range: (64, 512),
            output_len_range: (8, 64),
            seed: 11,
        },
        TraceConfig {
            num_requests: 7,
            arrival_rate_rps: 30.0,
            prompt_len_range: (16, 64),
            output_len_range: (2, 8),
            seed: 29,
        },
    ]
    .iter()
    .map(TraceConfig::generate)
    .collect()
}

#[test]
fn frozen_dispatch_reproduces_the_legacy_shards_exactly() {
    for trace in traces() {
        for replicas in [1usize, 2, 3, 5] {
            let legacy_lot = legacy::dispatch_trace_frozen(&trace, replicas, true);
            let new_lot = dispatch_trace(
                &trace,
                replicas,
                DispatchPolicy::LeastOutstandingTokensFrozen,
            );
            assert_eq!(legacy_lot, new_lot);
            let legacy_rr = legacy::dispatch_trace_frozen(&trace, replicas, false);
            let new_rr = dispatch_trace(&trace, replicas, DispatchPolicy::RoundRobin);
            assert_eq!(legacy_rr, new_rr);
        }
    }
}

#[test]
fn replica_fleet_reproduces_the_legacy_aggregation_bit_for_bit() {
    let device = DeviceSpec::a100_40g();
    let config = MoeModelConfig::qwen2_moe();
    let scfg = SchedulerConfig::default();
    for trace in traces() {
        for replicas in [1usize, 2, 4] {
            for engine in [EngineKind::Samoyeds, EngineKind::Transformers] {
                // The legacy pipeline: frozen shards, one scheduler run per
                // shard, frozen aggregation.
                let shards = legacy::dispatch_trace_frozen(&trace, replicas, true);
                let results: Vec<_> = shards
                    .iter()
                    .map(|shard| {
                        Scheduler::new(device.clone(), config.clone(), engine, scfg).run(shard)
                    })
                    .collect();
                let legacy = legacy::aggregate(&results);

                // The shim, at its (frozen) defaults.
                let fleet = ReplicaFleet::new(device.clone(), config.clone(), engine, replicas)
                    .metrics(&trace);

                assert_eq!(fleet.completed, legacy.completed);
                assert_eq!(fleet.rejected, legacy.rejected);
                assert_eq!(fleet.makespan_ms, legacy.makespan_ms);
                assert_eq!(fleet.output_tokens_per_s, legacy.output_tokens_per_s);
                assert_eq!(fleet.request_latency, legacy.request_latency);
                assert_eq!(fleet.ttft, legacy.ttft);
                assert_eq!(fleet.tpot, legacy.tpot);
                // The extended breakdown agrees with the shards.
                assert_eq!(fleet.per_replica.len(), replicas);
                for (breakdown, shard) in fleet.per_replica.iter().zip(&shards) {
                    let ids: Vec<u64> = shard.iter().map(|r| r.id).collect();
                    assert_eq!(breakdown.assigned_ids, ids);
                    assert_eq!(breakdown.assigned, shard.len());
                }
                // Static shim: no scaling timeline, nothing unroutable.
                assert!(fleet.scale_events.is_empty());
                assert!(fleet.unroutable_ids.is_empty());
            }
        }
    }
}
