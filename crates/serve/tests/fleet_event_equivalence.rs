//! Frozen-legacy equivalence suite for the event-driven fleet core.
//!
//! `legacy` below freezes `FleetController::run` exactly as it existed
//! before the event-queue refactor: a fixed tick loop (`next_tick +=
//! tick_ms` accumulation and all), per-arrival advances, `ready_ms`-based
//! routability, a panicking drain guard, and the shared aggregation —
//! re-expressed against the crate's public API. Running both the frozen loop
//! and today's event-driven loop on shared traces and asserting exact `f64`
//! equality on every `FleetMetrics` field (admissions, rejections, latency
//! percentiles, the scale-event timeline with its reason strings, per-replica
//! breakdowns) proves the refactor changed the *mechanism* — next-event time
//! advance, tick elision for non-scaling policies — without moving a single
//! bit of the *results*. Same discipline as `backend_equivalence.rs` and
//! `fleet_equivalence.rs`.
//!
//! Both sides run today's `SloAutoscaler`, so the suite pins the loop
//! refactor, not the (separately fixed and tested) policy streak handling.
//! The scenarios use tick periods (200 ms, 250 ms) whose running sums are
//! exact in `f64`, so the legacy accumulated schedule and the event core's
//! derived `k * tick_ms` schedule coincide bit-for-bit.

use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::engines::EngineKind;
use samoyeds_serve::{
    BurstPhase, BurstyTraceConfig, DispatchPolicy, ExecutionBackend, FleetConfig, FleetController,
    FleetMetrics, NoAutoscale, Request, SchedulerConfig, SingleGpuBackend, SloAutoscaler,
    TraceConfig,
};

/// The pre-event-core tick-driven fleet loop, frozen for comparison.
mod legacy {
    use samoyeds_moe::engines::EngineKind;
    use samoyeds_serve::metrics::{latency_summary, ServingMetrics};
    use samoyeds_serve::request::Request;
    use samoyeds_serve::scheduler::{ReplicaDriver, SchedulerConfig};
    use samoyeds_serve::{
        AutoscalePolicy, DispatchPolicy, ExecutionBackend, FleetConfig, FleetMetrics,
        FleetObservation, ReplicaBreakdown, ScaleDecision, ScaleEvent, ScaleKind,
    };

    struct Slot {
        driver: ReplicaDriver<Box<dyn ExecutionBackend>>,
        description: String,
        spawned_ms: f64,
        ready_ms: f64,
        draining: bool,
        retired_ms: Option<f64>,
        assigned_ids: Vec<u64>,
        assigned_tokens: usize,
    }

    impl Slot {
        fn new(
            backend: Box<dyn ExecutionBackend>,
            scfg: SchedulerConfig,
            spawned_ms: f64,
            ready_ms: f64,
        ) -> Self {
            let description = backend.describe();
            Self {
                driver: ReplicaDriver::new(backend, scfg),
                description,
                spawned_ms,
                ready_ms,
                draining: false,
                retired_ms: None,
                assigned_ids: Vec::new(),
                assigned_tokens: 0,
            }
        }

        fn commissioned(&self) -> bool {
            !self.draining && self.retired_ms.is_none()
        }

        fn routable(&self, now_ms: f64) -> bool {
            self.commissioned() && self.ready_ms <= now_ms
        }
    }

    /// Verbatim pre-refactor `FleetController::run`: the fixed tick loop
    /// with accumulated `next_tick`, and the drain loop with its panicking
    /// safety guard.
    pub fn run_frozen(
        config: FleetConfig,
        initial: Vec<Box<dyn ExecutionBackend>>,
        factory: Option<Box<dyn Fn() -> Box<dyn ExecutionBackend>>>,
        mut autoscaler: Box<dyn AutoscalePolicy>,
        trace: &[Request],
    ) -> FleetMetrics {
        assert!(!initial.is_empty());
        let scfg = config.scheduler;
        let mut slots: Vec<Slot> = initial
            .into_iter()
            .map(|backend| Slot::new(backend, scfg, 0.0, 0.0))
            .collect();
        let mut events: Vec<ScaleEvent> = Vec::new();
        let mut unroutable: Vec<u64> = Vec::new();
        let mut peak_replicas = slots.len();
        let mut rr_cursor = 0usize;
        let mut next_tick = config.tick_ms;

        for request in trace {
            while next_tick <= request.arrival_ms {
                control_tick(
                    next_tick,
                    &config,
                    autoscaler.as_mut(),
                    factory.as_deref(),
                    &mut slots,
                    &mut events,
                    &mut peak_replicas,
                );
                next_tick += config.tick_ms;
            }
            for slot in slots.iter_mut() {
                slot.driver.advance_to(request.arrival_ms);
            }

            let eligible: Vec<usize> = slots
                .iter()
                .enumerate()
                .filter(|(_, slot)| {
                    slot.routable(request.arrival_ms) && slot.driver.can_ever_admit(request)
                })
                .map(|(i, _)| i)
                .collect();
            let Some(&target) = (match config.policy {
                DispatchPolicy::RoundRobin => {
                    let picked = eligible.get(rr_cursor.checked_rem(eligible.len()).unwrap_or(0));
                    rr_cursor = rr_cursor.wrapping_add(1);
                    picked
                }
                DispatchPolicy::LeastOutstandingTokens { .. } => eligible
                    .iter()
                    .min_by_key(|&&i| slots[i].driver.outstanding_tokens()),
                DispatchPolicy::LeastOutstandingTokensFrozen => {
                    eligible.iter().min_by_key(|&&i| slots[i].assigned_tokens)
                }
            }) else {
                unroutable.push(request.id);
                continue;
            };
            slots[target].driver.enqueue(*request);
            slots[target].assigned_ids.push(request.id);
            slots[target].assigned_tokens += request.total_tokens();
        }

        let mut guard = 0usize;
        while slots.iter().any(|slot| !slot.driver.is_drained()) {
            control_tick(
                next_tick,
                &config,
                autoscaler.as_mut(),
                factory.as_deref(),
                &mut slots,
                &mut events,
                &mut peak_replicas,
            );
            next_tick += config.tick_ms;
            guard += 1;
            assert!(guard < 10_000_000, "legacy drain guard");
        }

        finalize(slots, events, unroutable, peak_replicas)
    }

    #[allow(clippy::too_many_arguments)]
    fn control_tick(
        t: f64,
        config: &FleetConfig,
        autoscaler: &mut dyn AutoscalePolicy,
        factory: Option<&dyn Fn() -> Box<dyn ExecutionBackend>>,
        slots: &mut Vec<Slot>,
        events: &mut Vec<ScaleEvent>,
        peak_replicas: &mut usize,
    ) {
        for slot in slots.iter_mut() {
            slot.driver.advance_to(t);
            if slot.draining && slot.retired_ms.is_none() && slot.driver.is_drained() {
                slot.retired_ms = Some(t);
            }
        }

        let obs = observe(t, config, slots);
        match autoscaler.decide(&obs) {
            ScaleDecision::Hold => {}
            ScaleDecision::ScaleOut => {
                let commissioned = slots.iter().filter(|s| s.commissioned()).count();
                if commissioned < config.max_replicas {
                    if let Some(factory) = factory {
                        slots.push(Slot::new(
                            factory(),
                            config.scheduler,
                            t,
                            t + config.warmup_ms,
                        ));
                        events.push(ScaleEvent {
                            at_ms: t,
                            kind: ScaleKind::Out,
                            replicas_after: commissioned + 1,
                            reason: describe_observation(&obs),
                        });
                    }
                }
            }
            ScaleDecision::ScaleIn => {
                let commissioned = slots.iter().filter(|s| s.commissioned()).count();
                let routable_capable = slots
                    .iter()
                    .filter(|s| s.routable(t) && s.driver.can_serve_model())
                    .count();
                let candidate = slots
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.commissioned())
                    .filter(|(_, s)| {
                        !s.driver.can_serve_model()
                            || s.ready_ms > t
                            || routable_capable > config.min_replicas
                    })
                    .min_by(|(ia, a), (ib, b)| {
                        a.driver
                            .can_serve_model()
                            .cmp(&b.driver.can_serve_model())
                            .then(
                                a.driver
                                    .outstanding_tokens()
                                    .cmp(&b.driver.outstanding_tokens()),
                            )
                            .then(
                                b.spawned_ms
                                    .partial_cmp(&a.spawned_ms)
                                    .expect("spawn times are finite"),
                            )
                            .then(ib.cmp(ia))
                    })
                    .map(|(i, _)| i);
                if let Some(i) = candidate {
                    let commissioned_capable = slots
                        .iter()
                        .filter(|s| s.commissioned() && s.driver.can_serve_model())
                        .count();
                    let allowed = if slots[i].driver.can_serve_model() {
                        commissioned_capable > config.min_replicas
                    } else {
                        commissioned > 1
                    };
                    if allowed {
                        slots[i].draining = true;
                        if slots[i].driver.is_drained() {
                            slots[i].retired_ms = Some(t);
                        }
                        events.push(ScaleEvent {
                            at_ms: t,
                            kind: ScaleKind::In,
                            replicas_after: commissioned - 1,
                            reason: describe_observation(&obs),
                        });
                    }
                }
            }
        }
        *peak_replicas = (*peak_replicas).max(slots.iter().filter(|s| s.commissioned()).count());
    }

    fn observe(t: f64, config: &FleetConfig, slots: &[Slot]) -> FleetObservation {
        let window_start = (t - config.window_ms).max(0.0);
        let mut ttfts = Vec::new();
        for slot in slots {
            for c in slot.driver.completed().iter().rev() {
                if c.finished_ms <= window_start {
                    break;
                }
                if c.first_token_ms > window_start && c.first_token_ms <= t {
                    ttfts.push(c.ttft_ms());
                }
            }
            for r in slot.driver.running_requests() {
                if let Some(first) = r.first_token_ms {
                    if first > window_start && first <= t {
                        ttfts.push(first - r.request.arrival_ms);
                    }
                }
            }
        }
        let p95_ttft_ms = if ttfts.is_empty() {
            None
        } else {
            Some(latency_summary(&ttfts).p95_ms)
        };
        let max_pending_wait_ms = slots
            .iter()
            .filter(|s| s.retired_ms.is_none())
            .filter_map(|s| s.driver.oldest_unserved_arrival_ms())
            .map(|arrival| (t - arrival).max(0.0))
            .fold(0.0f64, f64::max);

        let mut busy_ms = 0.0;
        let mut available_ms = 0.0;
        for slot in slots.iter().filter(|s| s.retired_ms.is_none()) {
            let since = window_start.max(slot.ready_ms);
            if since < t {
                busy_ms += slot.driver.busy_ms_between(since, t);
                available_ms += t - since;
            }
        }
        FleetObservation {
            now_ms: t,
            routable_replicas: slots.iter().filter(|s| s.routable(t)).count(),
            warming_replicas: slots
                .iter()
                .filter(|s| s.commissioned() && s.ready_ms > t)
                .count(),
            p95_ttft_ms,
            max_pending_wait_ms,
            utilization: if available_ms > 0.0 {
                busy_ms / available_ms
            } else {
                0.0
            },
            outstanding_tokens: slots.iter().map(|s| s.driver.outstanding_tokens()).sum(),
            queued_requests: slots.iter().map(|s| s.driver.queued_requests()).sum(),
        }
    }

    fn describe_observation(obs: &FleetObservation) -> String {
        format!(
            "p95 TTFT {} · max wait {:.0} ms · util {:.0}% · {} queued",
            obs.p95_ttft_ms
                .map_or_else(|| "-".to_string(), |p| format!("{p:.0} ms")),
            obs.max_pending_wait_ms,
            obs.utilization * 100.0,
            obs.queued_requests,
        )
    }

    fn finalize(
        slots: Vec<Slot>,
        scale_events: Vec<ScaleEvent>,
        unroutable_ids: Vec<u64>,
        peak_replicas: usize,
    ) -> FleetMetrics {
        let mut per_replica = Vec::with_capacity(slots.len());
        let mut latencies = Vec::new();
        let mut ttfts = Vec::new();
        let mut tpots = Vec::new();
        let mut completed = 0usize;
        let mut rejected = unroutable_ids.len();
        let mut output_tokens = 0usize;
        let mut makespan_ms = 0.0f64;
        for slot in slots {
            let result = slot.driver.finish();
            completed += result.completed.len();
            rejected += result.rejected.len();
            output_tokens += result.output_tokens();
            makespan_ms = makespan_ms.max(result.makespan_ms);
            latencies.extend(result.completed.iter().map(|c| c.latency_ms()));
            ttfts.extend(result.completed.iter().map(|c| c.ttft_ms()));
            tpots.extend(result.completed.iter().filter_map(|c| c.tpot_ms()));
            per_replica.push(ReplicaBreakdown {
                engine: result.engine,
                metrics: ServingMetrics::from_result(&result),
                description: slot.description,
                spawned_ms: slot.spawned_ms,
                ready_ms: slot.ready_ms,
                retired_ms: slot.retired_ms,
                assigned: slot.assigned_ids.len(),
                assigned_ids: slot.assigned_ids,
            });
        }
        FleetMetrics {
            engine: per_replica
                .first()
                .map(|r| r.engine)
                .unwrap_or(EngineKind::Samoyeds),
            replicas: peak_replicas,
            completed,
            rejected,
            output_tokens_per_s: if makespan_ms > 0.0 {
                output_tokens as f64 / (makespan_ms / 1e3)
            } else {
                0.0
            },
            request_latency: latency_summary(&latencies),
            ttft: latency_summary(&ttfts),
            tpot: latency_summary(&tpots),
            makespan_ms,
            per_replica,
            scale_events,
            unroutable_ids,
            failed_ids: Vec::new(),
            faults: Vec::new(),
            drain_incomplete: false,
            drain_incomplete_replicas: Vec::new(),
        }
    }
}

fn single(
    device: DeviceSpec,
    engine: EngineKind,
    scfg: &SchedulerConfig,
) -> Box<dyn ExecutionBackend> {
    Box::new(SingleGpuBackend::new(
        device,
        &MoeModelConfig::qwen2_moe(),
        engine,
        scfg,
    ))
}

fn poisson_trace() -> Vec<Request> {
    TraceConfig {
        num_requests: 48,
        arrival_rate_rps: 30.0,
        prompt_len_range: (32, 384),
        output_len_range: (4, 32),
        seed: 23,
    }
    .generate()
}

fn bursty_trace() -> Vec<Request> {
    BurstyTraceConfig {
        phases: vec![
            BurstPhase {
                arrival_rate_rps: 2.0,
                num_requests: 8,
            },
            BurstPhase {
                arrival_rate_rps: 150.0,
                num_requests: 60,
            },
            BurstPhase {
                arrival_rate_rps: 2.0,
                num_requests: 8,
            },
        ],
        prompt_len_range: (64, 256),
        output_len_range: (16, 48),
        seed: 17,
    }
    .generate()
}

/// Exact `f64` / structural equality on every `FleetMetrics` field.
fn assert_metrics_equal(event_driven: &FleetMetrics, frozen: &FleetMetrics) {
    assert_eq!(event_driven.engine, frozen.engine);
    assert_eq!(event_driven.replicas, frozen.replicas);
    assert_eq!(event_driven.completed, frozen.completed);
    assert_eq!(event_driven.rejected, frozen.rejected);
    assert_eq!(event_driven.output_tokens_per_s, frozen.output_tokens_per_s);
    assert_eq!(event_driven.request_latency, frozen.request_latency);
    assert_eq!(event_driven.ttft, frozen.ttft);
    assert_eq!(event_driven.tpot, frozen.tpot);
    assert_eq!(event_driven.makespan_ms, frozen.makespan_ms);
    assert_eq!(event_driven.unroutable_ids, frozen.unroutable_ids);
    assert!(!event_driven.drain_incomplete);
    assert_eq!(event_driven.scale_events.len(), frozen.scale_events.len());
    for (a, b) in event_driven.scale_events.iter().zip(&frozen.scale_events) {
        assert_eq!(a.at_ms, b.at_ms);
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.replicas_after, b.replicas_after);
        assert_eq!(a.reason, b.reason);
    }
    assert_eq!(event_driven.per_replica.len(), frozen.per_replica.len());
    for (a, b) in event_driven.per_replica.iter().zip(&frozen.per_replica) {
        assert_eq!(a.description, b.description);
        assert_eq!(a.engine, b.engine);
        assert_eq!(a.spawned_ms, b.spawned_ms);
        assert_eq!(a.ready_ms, b.ready_ms);
        assert_eq!(a.retired_ms, b.retired_ms);
        assert_eq!(a.assigned, b.assigned);
        assert_eq!(a.assigned_ids, b.assigned_ids);
        assert_eq!(a.metrics.engine, b.metrics.engine);
        assert_eq!(a.metrics.completed, b.metrics.completed);
        assert_eq!(a.metrics.rejected, b.metrics.rejected);
        assert_eq!(a.metrics.output_tokens_per_s, b.metrics.output_tokens_per_s);
        assert_eq!(
            a.metrics.processed_tokens_per_s,
            b.metrics.processed_tokens_per_s
        );
        assert_eq!(a.metrics.request_latency, b.metrics.request_latency);
        assert_eq!(a.metrics.ttft, b.metrics.ttft);
        assert_eq!(a.metrics.tpot, b.metrics.tpot);
        assert_eq!(a.metrics.makespan_ms, b.metrics.makespan_ms);
        assert_eq!(a.metrics.peak_memory_gib, b.metrics.peak_memory_gib);
        assert_eq!(a.metrics.budget_gib, b.metrics.budget_gib);
        assert_eq!(a.metrics.servable, b.metrics.servable);
    }
}

#[test]
fn fixed_fleet_with_elided_ticks_matches_the_frozen_tick_loop() {
    // NoAutoscale elides the tick schedule entirely: the fleet advances on
    // arrivals and step completions alone. The frozen loop still ticks every
    // 200 ms; both must land on identical metrics.
    let scfg = SchedulerConfig::default();
    let config = FleetConfig::default();
    for trace in [poisson_trace(), bursty_trace()] {
        let event_driven = FleetController::new(config)
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .run(&trace);
        let frozen = legacy::run_frozen(
            config,
            vec![
                single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg),
                single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg),
            ],
            None,
            Box::new(NoAutoscale),
            &trace,
        );
        assert_metrics_equal(&event_driven, &frozen);
    }
}

#[test]
fn heterogeneous_round_robin_fleet_matches_the_frozen_tick_loop() {
    // Mixed fleet with dead weight (dense weights can never fit the 12 GiB
    // card) under round-robin: eligibility filtering and the wrapping
    // cursor must interleave identically.
    let scfg = SchedulerConfig::default();
    let config = FleetConfig {
        policy: DispatchPolicy::RoundRobin,
        ..FleetConfig::default()
    };
    let build = || {
        vec![
            single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg),
            single(DeviceSpec::rtx4070_super(), EngineKind::Samoyeds, &scfg),
            single(DeviceSpec::rtx4070_super(), EngineKind::Transformers, &scfg),
        ]
    };
    for trace in [poisson_trace(), bursty_trace()] {
        let mut controller = FleetController::new(config);
        for backend in build() {
            controller = controller.with_replica(backend);
        }
        let event_driven = controller.run(&trace);
        let frozen = legacy::run_frozen(config, build(), None, Box::new(NoAutoscale), &trace);
        assert_metrics_equal(&event_driven, &frozen);
    }
}

#[test]
fn autoscaled_fleet_matches_the_frozen_tick_loop() {
    // SLO-driven autoscaling with warm-up: scale-outs, warm-up completions,
    // drains and retirements must land at the same instants with the same
    // reason strings. Both sides run today's `SloAutoscaler`.
    let scfg = SchedulerConfig::default();
    let config = FleetConfig {
        warmup_ms: 500.0,
        max_replicas: 4,
        ..FleetConfig::default()
    };
    let mut timeline_events = 0;
    for trace in [poisson_trace(), bursty_trace()] {
        let event_driven = FleetController::new(config)
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_factory(move || single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_autoscaler(SloAutoscaler::new(400.0))
            .run(&trace);
        let frozen = legacy::run_frozen(
            config,
            vec![single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg)],
            Some(Box::new(move || {
                single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg)
            })),
            Box::new(SloAutoscaler::new(400.0)),
            &trace,
        );
        assert_metrics_equal(&event_driven, &frozen);
        timeline_events += event_driven.scale_events.len();
    }
    // The scenario actually exercises the timeline (the burst forces
    // scale-outs and the post-burst idle forces scale-ins).
    assert!(timeline_events >= 2, "only {timeline_events} scale events");
}

#[test]
fn zero_warmup_frozen_policy_fleet_matches_the_frozen_tick_loop() {
    // Zero-length warm-up makes warm-up completion simultaneous with its
    // scale-out tick, and an odd 250 ms tick stresses the tick/arrival
    // interleaving; the frozen-counter dispatch policy rides along.
    let scfg = SchedulerConfig::default();
    let config = FleetConfig {
        policy: DispatchPolicy::LeastOutstandingTokensFrozen,
        tick_ms: 250.0,
        warmup_ms: 0.0,
        max_replicas: 3,
        ..FleetConfig::default()
    };
    for trace in [poisson_trace(), bursty_trace()] {
        let event_driven = FleetController::new(config)
            .with_replica(single(
                DeviceSpec::rtx4070_super(),
                EngineKind::Samoyeds,
                &scfg,
            ))
            .with_factory(move || single(DeviceSpec::rtx4070_super(), EngineKind::Samoyeds, &scfg))
            .with_autoscaler(SloAutoscaler::new(900.0))
            .run(&trace);
        let frozen = legacy::run_frozen(
            config,
            vec![single(
                DeviceSpec::rtx4070_super(),
                EngineKind::Samoyeds,
                &scfg,
            )],
            Some(Box::new(move || {
                single(DeviceSpec::rtx4070_super(), EngineKind::Samoyeds, &scfg)
            })),
            Box::new(SloAutoscaler::new(900.0)),
            &trace,
        );
        assert_metrics_equal(&event_driven, &frozen);
    }
}
