//! Property-based invariants of prefill/decode disaggregation: the request
//! ledger is conserved across the handoff (every offered request completes,
//! is rejected, or is explicitly failed — none vanish between pods), every
//! KV transfer moves exactly the bytes [`MemoryModel::kv_bytes`] prices for
//! the prompt it carries, and a disaggregated run is a pure function of its
//! configuration — identical runs replay bit-for-bit, events included.

use proptest::prelude::*;
use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::engines::EngineKind;
use samoyeds_serve::{
    DisaggregationConfig, ExecutionBackend, FleetConfig, FleetController, FleetMetrics, KvLink,
    MemoryModel, Request, SchedulerConfig, SharedSink, SingleGpuBackend, TraceConfig, TraceEvent,
    TraceRecorder,
};
use std::collections::BTreeMap;

fn replica(device: DeviceSpec, scfg: &SchedulerConfig) -> Box<dyn ExecutionBackend> {
    Box::new(SingleGpuBackend::new(
        device,
        &MoeModelConfig::qwen2_moe(),
        EngineKind::Samoyeds,
        scfg,
    ))
}

fn kv_memory() -> MemoryModel {
    MemoryModel::new(
        &DeviceSpec::rtx4070_super(),
        EngineKind::Samoyeds,
        &MoeModelConfig::qwen2_moe(),
    )
}

/// A fleet of `slots` pods — A100 prefill on the leading `prefill` slots,
/// RTX 4070 Super decode on the rest — run over `trace` with a recorder
/// attached. Returns the metrics and the recorded event stream.
fn run_disagg(
    trace: &[Request],
    slots: usize,
    prefill: usize,
    link: KvLink,
) -> (FleetMetrics, Vec<TraceEvent>) {
    let scfg = SchedulerConfig::default();
    let config = FleetConfig {
        max_replicas: slots,
        ..FleetConfig::default()
    };
    let disagg = DisaggregationConfig::uniform(
        (0..prefill).collect(),
        (prefill..slots).collect(),
        kv_memory(),
        link,
    );
    let (sink, recorder) = SharedSink::new(TraceRecorder::new());
    let mut controller = FleetController::new(config);
    for slot in 0..slots {
        let device = if slot < prefill {
            DeviceSpec::a100_40g()
        } else {
            DeviceSpec::rtx4070_super()
        };
        controller = controller.with_replica(replica(device, &scfg));
    }
    let metrics = controller
        .with_disaggregation(disagg)
        .with_sink(sink)
        .run(trace);
    let events = recorder.borrow().events();
    (metrics, events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation across the handoff: every offered request is either
    /// completed (decoded on a decode pod), rejected at admission, or
    /// explicitly failed — the split ids the handoff introduces never leak
    /// a request between the prefill and decode halves.
    #[test]
    fn the_request_ledger_is_conserved_across_the_handoff(
        seed in any::<u64>(),
        num_requests in 4usize..32,
        rate in 5.0f64..60.0,
        slots in 2usize..5,
        split in 1usize..4,
    ) {
        let prefill = split.min(slots - 1);
        let trace = TraceConfig {
            num_requests,
            arrival_rate_rps: rate,
            prompt_len_range: (16, 320),
            output_len_range: (2, 24),
            seed,
        }
        .generate();
        let link = KvLink { latency_us: 5.0, bandwidth_gbps: 50.0 };
        let (metrics, _) = run_disagg(&trace, slots, prefill, link);
        prop_assert_eq!(
            metrics.completed + metrics.rejected + metrics.failed(),
            trace.len(),
            "offered requests leaked between the pods"
        );
    }

    /// Byte conservation: each KV handoff carries exactly
    /// `MemoryModel::kv_bytes(prompt_len)` of the request it moves, every
    /// transfer that starts also lands, and a landing never precedes its
    /// start.
    #[test]
    fn every_transfer_moves_exactly_the_priced_kv_bytes(
        seed in any::<u64>(),
        num_requests in 4usize..24,
        latency_us in 1.0f64..50.0,
        bandwidth_gbps in 5.0f64..100.0,
    ) {
        let trace = TraceConfig {
            num_requests,
            arrival_rate_rps: 25.0,
            prompt_len_range: (16, 320),
            output_len_range: (2, 24),
            seed,
        }
        .generate();
        let prompt_lens: BTreeMap<u64, usize> =
            trace.iter().map(|r| (r.id, r.prompt_len)).collect();
        let memory = kv_memory();
        let link = KvLink { latency_us, bandwidth_gbps };
        let (_, events) = run_disagg(&trace, 3, 1, link);
        let mut started: BTreeMap<u64, f64> = BTreeMap::new();
        let mut landed = 0usize;
        for e in &events {
            match *e {
                TraceEvent::KvTransferStarted { id, bytes, at_ms, .. } => {
                    let prompt = prompt_lens[&id];
                    prop_assert_eq!(bytes, memory.kv_bytes(prompt));
                    started.insert(id, at_ms);
                }
                TraceEvent::KvTransferComplete { id, bytes, at_ms, .. } => {
                    let start = started[&id];
                    prop_assert!(at_ms >= start);
                    prop_assert_eq!(bytes, memory.kv_bytes(prompt_lens[&id]));
                    landed += 1;
                }
                _ => {}
            }
        }
        prop_assert_eq!(started.len(), landed, "a transfer started but never landed");
    }

    /// Seeded determinism: a disaggregated run is a pure function of its
    /// configuration — running it twice yields identical metrics and an
    /// identical event stream.
    #[test]
    fn identical_disagg_runs_replay_bit_for_bit(
        seed in any::<u64>(),
        num_requests in 4usize..24,
        slots in 2usize..5,
        split in 1usize..4,
    ) {
        let prefill = split.min(slots - 1);
        let trace = TraceConfig {
            num_requests,
            arrival_rate_rps: 40.0,
            prompt_len_range: (16, 320),
            output_len_range: (2, 24),
            seed,
        }
        .generate();
        let link = KvLink { latency_us: 8.0, bandwidth_gbps: 25.0 };
        let (first, first_events) = run_disagg(&trace, slots, prefill, link);
        let (second, second_events) = run_disagg(&trace, slots, prefill, link);
        prop_assert_eq!(first.completed, second.completed);
        prop_assert_eq!(first.rejected, second.rejected);
        prop_assert_eq!(first.failed_ids, second.failed_ids);
        prop_assert_eq!(first.output_tokens_per_s, second.output_tokens_per_s);
        prop_assert_eq!(first.request_latency, second.request_latency);
        prop_assert_eq!(first.ttft, second.ttft);
        prop_assert_eq!(first.tpot, second.tpot);
        prop_assert_eq!(first.makespan_ms, second.makespan_ms);
        prop_assert_eq!(first_events, second_events);
    }
}
