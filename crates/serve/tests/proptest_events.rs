//! Property-based ordering contract of the fleet event queue: ascending
//! timestamps, same-timestamp ties broken by event class, same-class ties
//! broken FIFO. Timestamps are drawn from a tiny pool so nearly every case
//! is tie-heavy — the regime where a sloppy comparator would still pass a
//! uniform-random test.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use samoyeds_serve::{EventQueue, FleetEvent};

/// The public ordering class (mirrors the queue's internal tie-break: see
/// `FleetEvent::class` — warm-ups, then retirements, then faults and their
/// recoveries, then KV-transfer landings, then ticks, then arrivals, then
/// step completions).
fn class(event: &FleetEvent) -> u8 {
    match event {
        FleetEvent::WarmupComplete { .. } => 0,
        FleetEvent::DrainRetire { .. } => 1,
        FleetEvent::Fault { .. } => 2,
        FleetEvent::FaultRecovery { .. } => 3,
        FleetEvent::KvTransferComplete { .. } => 4,
        FleetEvent::ControlTick { .. } => 5,
        FleetEvent::Arrival { .. } => 6,
        FleetEvent::StepCompletion { .. } => 7,
    }
}

const NUM_CLASSES: u8 = 8;

fn arb_event() -> impl Strategy<Value = FleetEvent> {
    (0u8..NUM_CLASSES, 0usize..64).prop_map(|(kind, idx)| match kind {
        0 => FleetEvent::WarmupComplete { slot: idx % 8 },
        1 => FleetEvent::DrainRetire { slot: idx % 8 },
        2 => FleetEvent::Fault { index: idx % 8 },
        3 => FleetEvent::FaultRecovery { index: idx % 8 },
        4 => FleetEvent::KvTransferComplete { transfer: idx },
        5 => FleetEvent::ControlTick {
            index: 1 + (idx as u64) % 16,
        },
        6 => FleetEvent::Arrival { index: idx },
        _ => FleetEvent::StepCompletion { slot: idx % 8 },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Equal-timestamp events pop in class order, and same-class ties pop
    /// in push (FIFO) order — the full deterministic contract the control
    /// plane's replay stability rests on.
    #[test]
    fn pops_ascend_by_time_then_class_then_fifo(
        pushes in pvec((0u8..4, arb_event()), 1..200),
    ) {
        let mut queue = EventQueue::new();
        // A 4-value timestamp pool over up to 200 events forces dozens of
        // exact ties per case.
        for &(t, event) in &pushes {
            queue.push(t as f64 * 0.5, event);
        }
        prop_assert_eq!(queue.len(), pushes.len());

        let mut popped = Vec::new();
        while let Some((at_ms, event)) = queue.pop() {
            popped.push((at_ms, event));
        }
        prop_assert_eq!(popped.len(), pushes.len());

        // Ascending (time, class); FIFO within equal (time, class) is
        // checked against the original push order below.
        for pair in popped.windows(2) {
            let (t0, e0) = &pair[0];
            let (t1, e1) = &pair[1];
            prop_assert!(
                (*t0, class(e0)) <= (*t1, class(e1)),
                "out of order: ({t0}, {:?}) before ({t1}, {:?})", e0, e1
            );
        }

        // FIFO: for each (time, class) bucket the popped subsequence equals
        // the pushed subsequence, element for element.
        for t in 0u8..4 {
            let at_ms = t as f64 * 0.5;
            for c in 0u8..NUM_CLASSES {
                let pushed: Vec<FleetEvent> = pushes
                    .iter()
                    .filter(|(pt, e)| *pt == t && class(e) == c)
                    .map(|&(_, e)| e)
                    .collect();
                let got: Vec<FleetEvent> = popped
                    .iter()
                    .filter(|(pat, e)| *pat == at_ms && class(e) == c)
                    .map(|&(_, e)| e)
                    .collect();
                prop_assert_eq!(got, pushed, "bucket t={} class={}", t, c);
            }
        }
    }

    /// Interleaved pushes and pops agree with a brute-force shadow model:
    /// every pop returns exactly the queued event with the smallest
    /// (time, class, arrival-sequence) key, even when later pushes insert
    /// earlier timestamps between pops.
    #[test]
    fn interleaved_pops_match_a_shadow_model(
        ops in pvec((0u8..3, arb_event()), 1..120),
    ) {
        let mut queue = EventQueue::new();
        let mut model: Vec<(f64, u8, usize, FleetEvent)> = Vec::new();
        for (seq, &(t, event)) in ops.iter().enumerate() {
            let at_ms = t as f64;
            queue.push(at_ms, event);
            model.push((at_ms, class(&event), seq, event));
            if seq % 3 == 2 {
                let (got_ms, got) = queue.pop().expect("queue is non-empty");
                let best = model
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2))
                    })
                    .map(|(i, _)| i)
                    .expect("model is non-empty");
                let (want_ms, _, _, want) = model.remove(best);
                prop_assert_eq!((got_ms, got), (want_ms, want));
            }
        }
        // Drain: the remainder keeps matching the model to emptiness.
        while let Some((got_ms, got)) = queue.pop() {
            let best = model
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2))
                })
                .map(|(i, _)| i)
                .expect("model tracks the queue");
            let (want_ms, _, _, want) = model.remove(best);
            prop_assert_eq!((got_ms, got), (want_ms, want));
        }
        prop_assert!(model.is_empty());
        prop_assert!(queue.is_empty());
    }
}
