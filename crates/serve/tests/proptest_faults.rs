//! Property-based invariants of the fault-injection subsystem: seeded
//! schedules replay bit-for-bit, and the request ledger is conserved under
//! arbitrary crash scripts — every offered request is completed, rejected
//! as unroutable, or explicitly failed by the recovery policy; none vanish.

use proptest::prelude::*;
use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::engines::EngineKind;
use samoyeds_serve::{
    DispatchPolicy, ExecutionBackend, FaultKind, FaultSchedule, FaultSpec, FleetConfig,
    FleetController, RecoveryPolicy, SchedulerConfig, SeededFaults, SingleGpuBackend, TraceConfig,
};

fn replica(scfg: &SchedulerConfig) -> Box<dyn ExecutionBackend> {
    Box::new(SingleGpuBackend::new(
        DeviceSpec::a100_40g(),
        &MoeModelConfig::qwen2_moe(),
        EngineKind::Samoyeds,
        scfg,
    ))
}

fn policy(idx: usize) -> DispatchPolicy {
    match idx % 3 {
        0 => DispatchPolicy::least_outstanding(),
        1 => DispatchPolicy::RoundRobin,
        _ => DispatchPolicy::LeastOutstandingTokensFrozen,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A seeded schedule is a pure function of (seed, rates, horizon,
    /// replica count): resolving it twice yields identical fault lists,
    /// sorted by injection time, never crashing a replica twice nor taking
    /// the last survivor.
    #[test]
    fn seeded_schedule_replays_bit_for_bit(
        seed in any::<u64>(),
        replicas in 1usize..9,
        horizon_s in 1.0f64..120.0,
        crash_rate in 0.0f64..2.0,
        degrade_rate in 0.0f64..2.0,
        degrade_duration_ms in 1.0f64..5_000.0,
    ) {
        let schedule = FaultSchedule::Seeded(SeededFaults {
            seed,
            horizon_ms: horizon_s * 1e3,
            crash_rate_per_s: crash_rate,
            degrade_rate_per_s: degrade_rate,
            degrade_duration_ms,
        });
        let first = schedule.resolve(replicas);
        let second = schedule.resolve(replicas);
        prop_assert_eq!(&first, &second);
        for w in first.windows(2) {
            prop_assert!(w[0].at_ms <= w[1].at_ms);
        }
        let crashed: Vec<usize> = first
            .iter()
            .filter_map(|s| match s.kind {
                FaultKind::ReplicaCrash { replica } => Some(replica),
                _ => None,
            })
            .collect();
        let mut unique = crashed.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(unique.len(), crashed.len(), "a replica crashed twice");
        prop_assert!(
            crashed.len() < replicas.max(1),
            "the last survivor was crashed"
        );
        for spec in &first {
            prop_assert!((0.0..horizon_s * 1e3).contains(&spec.at_ms));
        }
    }

    /// Request conservation under arbitrary crash scripts: whatever crashes
    /// whenever, under either re-admission or fail-fast, every offered
    /// request is accounted for exactly once — completed, rejected as
    /// unroutable, or failed by the policy — and the failed set is exactly
    /// `failed_ids`.
    #[test]
    fn crash_scripts_conserve_the_request_ledger(
        num_requests in 1usize..36,
        rate in 2.0f64..60.0,
        replicas in 2usize..5,
        crashes in proptest::collection::vec((0.0f64..4_000.0, 0usize..6), 0..4),
        readmit in any::<bool>(),
        transfer_ms in 0.0f64..500.0,
        policy_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        let scfg = SchedulerConfig::default();
        let trace = TraceConfig {
            num_requests,
            arrival_rate_rps: rate,
            prompt_len_range: (16, 256),
            output_len_range: (2, 24),
            seed,
        }
        .generate();
        // Fold the drawn target into the commissioned range: out-of-range
        // fault targets are now rejected statically by
        // `FleetController::validate` (fault::replica-out-of-range), so the
        // ledger property is exercised over schedules that pass validation.
        let specs: Vec<FaultSpec> = crashes
            .iter()
            .map(|&(at_ms, replica)| FaultSpec {
                at_ms,
                kind: FaultKind::ReplicaCrash {
                    replica: replica % replicas,
                },
            })
            .collect();
        let recovery = if readmit {
            RecoveryPolicy::readmit_after(transfer_ms)
        } else {
            RecoveryPolicy::fail_fast()
        };
        let config = FleetConfig {
            policy: policy(policy_idx),
            ..FleetConfig::default()
        };
        let mut controller = FleetController::new(config)
            .with_faults(FaultSchedule::Scripted(specs), recovery);
        for _ in 0..replicas {
            controller = controller.with_replica(replica(&scfg));
        }
        let metrics = controller.run(&trace);

        prop_assert_eq!(
            metrics.completed + metrics.rejected + metrics.failed(),
            trace.len(),
            "ledger leak: {} completed + {} rejected + {} failed != {} offered",
            metrics.completed,
            metrics.rejected,
            metrics.failed(),
            trace.len(),
        );
        prop_assert_eq!(metrics.failed(), metrics.failed_ids.len());
        prop_assert_eq!(metrics.rejected, metrics.unroutable_ids.len());
        // No id is double-counted across the three outcomes.
        let mut failed = metrics.failed_ids.clone();
        failed.sort_unstable();
        failed.dedup();
        prop_assert_eq!(failed.len(), metrics.failed_ids.len());
        for id in &metrics.failed_ids {
            prop_assert!(!metrics.unroutable_ids.contains(id));
        }
        // Fault bookkeeping matches the ledger: per-record lost splits into
        // readmitted + failed, and the failed totals agree.
        let mut failed_total = 0usize;
        for record in &metrics.faults {
            prop_assert_eq!(
                record.lost_running + record.lost_queued,
                record.readmitted + record.failed
            );
            failed_total += record.failed;
        }
        prop_assert_eq!(failed_total, metrics.failed());
        if !readmit {
            for record in &metrics.faults {
                prop_assert_eq!(record.readmitted, 0);
            }
        }
    }
}
