//! Property-based invariants of the online fleet control plane: request
//! conservation across heterogeneous fleets, the autoscaler's replica
//! floor, and memory-budget safety of capability-aware dispatch.

use proptest::prelude::*;
use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::engines::EngineKind;
use samoyeds_serve::{
    DispatchPolicy, ExecutionBackend, FleetConfig, FleetController, ScaleKind, SchedulerConfig,
    SingleGpuBackend, SloAutoscaler, TraceConfig,
};

/// The heterogeneous replica menu: device × engine pairs with different
/// capacities and capabilities (the dense 12 GiB replica cannot hold the
/// model at all, so it exercises the capability gate).
fn replica(idx: usize, scfg: &SchedulerConfig) -> Box<dyn ExecutionBackend> {
    let model = MoeModelConfig::qwen2_moe();
    let (device, engine) = match idx % 4 {
        0 => (DeviceSpec::a100_40g(), EngineKind::Samoyeds),
        1 => (DeviceSpec::rtx4070_super(), EngineKind::Samoyeds),
        2 => (DeviceSpec::a100_40g(), EngineKind::Transformers),
        _ => (DeviceSpec::rtx4070_super(), EngineKind::Transformers),
    };
    Box::new(SingleGpuBackend::new(device, &model, engine, scfg))
}

fn policy(idx: usize) -> DispatchPolicy {
    match idx % 3 {
        0 => DispatchPolicy::least_outstanding(),
        1 => DispatchPolicy::RoundRobin,
        _ => DispatchPolicy::LeastOutstandingTokensFrozen,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The online dispatcher conserves requests over any heterogeneous
    /// fleet: the union of the per-replica assignment logs plus the
    /// unroutable set is exactly the input trace, with no duplicates, and
    /// every request ends up completed or rejected.
    #[test]
    fn online_dispatch_conserves_requests(
        num_requests in 1usize..40,
        rate in 1.0f64..40.0,
        first_replica in 0usize..4,
        second_replica in 0usize..4,
        policy_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        let scfg = SchedulerConfig::default();
        let trace = TraceConfig {
            num_requests,
            arrival_rate_rps: rate,
            prompt_len_range: (16, 256),
            output_len_range: (2, 24),
            seed,
        }
        .generate();
        let config = FleetConfig {
            policy: policy(policy_idx),
            ..FleetConfig::default()
        };
        let metrics = FleetController::new(config)
            .with_replica(replica(first_replica, &scfg))
            .with_replica(replica(second_replica, &scfg))
            .run(&trace);

        prop_assert_eq!(metrics.completed + metrics.rejected, trace.len());
        let mut ids: Vec<u64> = metrics
            .per_replica
            .iter()
            .flat_map(|r| r.assigned_ids.iter().copied())
            .chain(metrics.unroutable_ids.iter().copied())
            .collect();
        ids.sort_unstable();
        let expected: Vec<u64> = trace.iter().map(|r| r.id).collect();
        prop_assert_eq!(ids, expected);
        // Routing is capability-aware: a replica is only handed requests it
        // could admit, so no replica-level rejection ever happens — every
        // rejection is an explicit fleet-level unroutable.
        for r in &metrics.per_replica {
            prop_assert_eq!(r.metrics.rejected, 0);
            prop_assert_eq!(r.metrics.completed, r.assigned);
        }
        prop_assert_eq!(metrics.rejected, metrics.unroutable_ids.len());
    }

    /// The autoscaler never drops the fleet below one replica, never
    /// exceeds the ceiling, and never admits a request past a replica's
    /// memory budget, whatever the SLO, warm-up or burstiness.
    #[test]
    fn autoscaler_respects_floor_ceiling_and_budgets(
        num_requests in 4usize..48,
        rate in 4.0f64..200.0,
        slo_ms in 100.0f64..2_000.0,
        warmup_ms in 0.0f64..3_000.0,
        max_replicas in 1usize..5,
        policy_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        let scfg = SchedulerConfig::default();
        let trace = TraceConfig {
            num_requests,
            arrival_rate_rps: rate,
            prompt_len_range: (16, 256),
            output_len_range: (2, 24),
            seed,
        }
        .generate();
        let config = FleetConfig {
            policy: policy(policy_idx),
            warmup_ms,
            min_replicas: 1,
            max_replicas,
            ..FleetConfig::default()
        };
        let metrics = FleetController::new(config)
            .with_replica(replica(0, &scfg))
            .with_factory(move || replica(0, &scfg))
            .with_autoscaler(SloAutoscaler::new(slo_ms))
            .run(&trace);

        prop_assert_eq!(metrics.completed, trace.len());
        // Timeline sanity: the fleet never reports fewer than one replica
        // or more than the ceiling, and peak tracks the events.
        for e in &metrics.scale_events {
            prop_assert!(e.replicas_after >= 1, "floor violated: {:?}", e);
            prop_assert!(e.replicas_after <= max_replicas, "ceiling violated: {:?}", e);
        }
        prop_assert!(metrics.replicas >= 1);
        prop_assert!(metrics.replicas <= max_replicas);
        // Replaying the timeline never crosses the floor or the ceiling.
        let mut live = 1usize;
        for e in &metrics.scale_events {
            match e.kind {
                ScaleKind::Out => live += 1,
                ScaleKind::In => live -= 1,
            }
            prop_assert_eq!(live, e.replicas_after);
            prop_assert!(live >= 1 && live <= max_replicas);
        }
        // Budget safety end to end: no replica's peak footprint exceeds its
        // budget, and scaled-out replicas charge their warm-up.
        for r in &metrics.per_replica {
            prop_assert!(
                r.metrics.peak_memory_gib <= r.metrics.budget_gib,
                "replica {} used {:.2} of {:.2} GiB",
                r.description,
                r.metrics.peak_memory_gib,
                r.metrics.budget_gib,
            );
            prop_assert_eq!(r.metrics.rejected, 0);
            prop_assert!((r.ready_ms - r.spawned_ms - if r.spawned_ms > 0.0 { warmup_ms } else { 0.0 }).abs() < 1e-9);
        }
    }
}
