//! Serving-simulator invariants: memory-budget safety, request conservation
//! and the Samoyeds-vs-Transformers serving ordering on a shared trace.

use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::engines::EngineKind;
use samoyeds_serve::{BatchLimits, Scheduler, SchedulerConfig, ServingSimulator, TraceConfig};

fn small_trace() -> TraceConfig {
    TraceConfig {
        num_requests: 16,
        arrival_rate_rps: 8.0,
        prompt_len_range: (32, 128),
        output_len_range: (4, 16),
        seed: 7,
    }
}

#[test]
fn scheduler_never_exceeds_the_memory_budget() {
    let sim = ServingSimulator::new(DeviceSpec::a100_40g(), MoeModelConfig::qwen2_moe())
        .with_trace(small_trace());
    for engine in [EngineKind::Samoyeds, EngineKind::Transformers] {
        let result = sim.simulate(engine);
        assert!(!result.steps.is_empty(), "{engine:?} executed no steps");
        for step in &result.steps {
            assert!(
                step.memory_bytes <= result.budget_bytes,
                "{engine:?}: step at {:.1}ms used {:.2} GiB of {:.2} GiB",
                step.start_ms,
                step.memory_bytes / (1 << 30) as f64,
                result.budget_bytes / (1 << 30) as f64,
            );
        }
        assert!(result.peak_memory_bytes <= result.budget_bytes);
    }
}

#[test]
fn requests_are_conserved() {
    let trace_cfg = small_trace();
    let trace = trace_cfg.generate();
    let sim = ServingSimulator::new(DeviceSpec::a100_40g(), MoeModelConfig::qwen2_moe())
        .with_trace(trace_cfg);
    let result = sim.simulate(EngineKind::Samoyeds);
    // Every trace request is either completed or rejected once the run
    // drains; nothing is lost or duplicated.
    assert_eq!(result.completed.len() + result.rejected.len(), trace.len());
    assert_eq!(result.admitted, result.completed.len());
    let mut ids: Vec<u64> = result
        .completed
        .iter()
        .map(|c| c.request.id)
        .chain(result.rejected.iter().map(|r| r.id))
        .collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), trace.len());
    // Timing sanity: arrival <= admission <= first token <= completion.
    for c in &result.completed {
        assert!(c.admitted_ms >= c.request.arrival_ms);
        assert!(c.first_token_ms >= c.admitted_ms);
        assert!(c.finished_ms >= c.first_token_ms);
        assert!(c.latency_ms() > 0.0);
    }
}

#[test]
fn samoyeds_sustains_at_least_transformers_throughput_on_the_same_trace() {
    let sim = ServingSimulator::new(DeviceSpec::a100_40g(), MoeModelConfig::qwen2_moe())
        .with_trace(small_trace());
    let metrics = sim.compare(&[EngineKind::Samoyeds, EngineKind::Transformers]);
    let samoyeds = &metrics[0];
    let transformers = &metrics[1];
    assert!(samoyeds.servable && transformers.servable);
    assert_eq!(samoyeds.completed, transformers.completed);
    assert!(
        samoyeds.output_tokens_per_s >= transformers.output_tokens_per_s,
        "samoyeds {:.0} tok/s vs transformers {:.0} tok/s",
        samoyeds.output_tokens_per_s,
        transformers.output_tokens_per_s,
    );
    assert!(
        samoyeds.request_latency.p95_ms <= transformers.request_latency.p95_ms,
        "samoyeds p95 {:.0}ms vs transformers p95 {:.0}ms",
        samoyeds.request_latency.p95_ms,
        transformers.request_latency.p95_ms,
    );
}

#[test]
fn samoyeds_serves_models_the_dense_engines_cannot_hold() {
    // Full-model Qwen2-MoE does not fit a 12 GiB card with dense weights but
    // does in the Samoyeds compressed representation — the serving analogue
    // of the Table 3 OOM entries.
    let sim = ServingSimulator::new(DeviceSpec::rtx4070_super(), MoeModelConfig::qwen2_moe())
        .with_trace(small_trace());
    let dense = sim.metrics(EngineKind::Transformers);
    let sparse = sim.metrics(EngineKind::Samoyeds);
    assert!(!dense.servable, "dense full model should OOM on 12 GiB");
    assert_eq!(dense.completed, 0);
    assert!(sparse.servable);
    assert!(sparse.completed > 0);
}

#[test]
fn tighter_token_budgets_do_not_break_invariants() {
    let scheduler_config = SchedulerConfig {
        limits: BatchLimits {
            max_batched_tokens: 64,
            max_running: 4,
            prefill_chunk: 32,
        },
        ..SchedulerConfig::default()
    };
    let scheduler = Scheduler::new(
        DeviceSpec::a100_40g(),
        MoeModelConfig::qwen2_moe(),
        EngineKind::Samoyeds,
        scheduler_config,
    );
    let trace = small_trace().generate();
    let result = scheduler.run(&trace);
    assert_eq!(result.completed.len() + result.rejected.len(), trace.len());
    for step in &result.steps {
        assert!(step.prefill_tokens + step.decode_tokens <= 64);
        assert!(step.running <= 4);
        assert!(step.memory_bytes <= result.budget_bytes);
    }
    // Requests finish in nondecreasing completion-time order.
    for pair in result.completed.windows(2) {
        assert!(pair[0].finished_ms <= pair[1].finished_ms);
    }
}
