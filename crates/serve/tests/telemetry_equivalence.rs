//! Telemetry is observation, never steering: installing any sink must leave
//! every `FleetMetrics` field bit-identical to the sink-free run — the same
//! frozen-path discipline the backend/fleet/event equivalence suites
//! enforce. This suite pins that, and checks the event stream agrees with
//! the metrics it shadows.

use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::engines::EngineKind;
use samoyeds_serve::{
    request_timelines, BurstPhase, BurstyTraceConfig, DispatchPolicy, ExecutionBackend,
    FleetConfig, FleetController, FleetMetrics, MetricsRegistry, NullSink, Request,
    SchedulerConfig, SharedSink, SingleGpuBackend, SloAutoscaler, TraceEvent, TraceRecorder,
};

fn single(
    device: DeviceSpec,
    engine: EngineKind,
    scfg: &SchedulerConfig,
) -> Box<dyn ExecutionBackend> {
    Box::new(SingleGpuBackend::new(
        device,
        &MoeModelConfig::qwen2_moe(),
        engine,
        scfg,
    ))
}

fn bursty_trace() -> Vec<Request> {
    BurstyTraceConfig {
        phases: vec![
            BurstPhase {
                arrival_rate_rps: 2.0,
                num_requests: 10,
            },
            BurstPhase {
                arrival_rate_rps: 120.0,
                num_requests: 50,
            },
            BurstPhase {
                arrival_rate_rps: 2.0,
                num_requests: 10,
            },
        ],
        prompt_len_range: (64, 256),
        output_len_range: (8, 32),
        seed: 17,
    }
    .generate()
}

/// A heterogeneous autoscaled fleet — the configuration that exercises every
/// emission site: routing, admission, steps, scale-out/in, warm-up, drain.
fn controller(scfg: SchedulerConfig) -> FleetController {
    let config = FleetConfig {
        scheduler: scfg,
        policy: DispatchPolicy::least_outstanding(),
        warmup_ms: 500.0,
        max_replicas: 4,
        ..FleetConfig::default()
    };
    FleetController::new(config)
        .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
        .with_replica(single(
            DeviceSpec::rtx4070_super(),
            EngineKind::Samoyeds,
            &scfg,
        ))
        .with_factory(move || single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
        .with_autoscaler(SloAutoscaler::new(400.0))
}

/// Every field of `FleetMetrics`, compared bit-for-bit (floats by `to_bits`
/// via exact equality — any drift is a failure, not a tolerance question).
fn assert_metrics_identical(a: &FleetMetrics, b: &FleetMetrics) {
    assert_eq!(a.engine, b.engine);
    assert_eq!(a.replicas, b.replicas);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.rejected, b.rejected);
    assert_eq!(
        a.output_tokens_per_s.to_bits(),
        b.output_tokens_per_s.to_bits()
    );
    assert_eq!(a.request_latency, b.request_latency);
    assert_eq!(a.ttft, b.ttft);
    assert_eq!(a.tpot, b.tpot);
    assert_eq!(a.makespan_ms.to_bits(), b.makespan_ms.to_bits());
    assert_eq!(a.unroutable_ids, b.unroutable_ids);
    assert_eq!(a.drain_incomplete, b.drain_incomplete);
    assert_eq!(a.scale_events.len(), b.scale_events.len());
    for (x, y) in a.scale_events.iter().zip(&b.scale_events) {
        assert_eq!(x.at_ms.to_bits(), y.at_ms.to_bits());
        assert_eq!(x.kind, y.kind);
        assert_eq!(x.replicas_after, y.replicas_after);
        assert_eq!(x.reason, y.reason);
    }
    assert_eq!(a.per_replica.len(), b.per_replica.len());
    for (x, y) in a.per_replica.iter().zip(&b.per_replica) {
        assert_eq!(x.description, y.description);
        assert_eq!(x.engine, y.engine);
        assert_eq!(x.spawned_ms.to_bits(), y.spawned_ms.to_bits());
        assert_eq!(x.ready_ms.to_bits(), y.ready_ms.to_bits());
        assert_eq!(
            x.retired_ms.map(f64::to_bits),
            y.retired_ms.map(f64::to_bits)
        );
        assert_eq!(x.assigned, y.assigned);
        assert_eq!(x.assigned_ids, y.assigned_ids);
        assert_eq!(x.metrics.completed, y.metrics.completed);
        assert_eq!(x.metrics.rejected, y.metrics.rejected);
        assert_eq!(
            x.metrics.output_tokens_per_s.to_bits(),
            y.metrics.output_tokens_per_s.to_bits()
        );
        assert_eq!(x.metrics.request_latency, y.metrics.request_latency);
        assert_eq!(x.metrics.ttft, y.metrics.ttft);
        assert_eq!(x.metrics.tpot, y.metrics.tpot);
        assert_eq!(
            x.metrics.makespan_ms.to_bits(),
            y.metrics.makespan_ms.to_bits()
        );
        assert_eq!(
            x.metrics.peak_memory_gib.to_bits(),
            y.metrics.peak_memory_gib.to_bits()
        );
    }
}

#[test]
fn null_sink_and_recording_sinks_leave_fleet_metrics_bit_identical() {
    let scfg = SchedulerConfig::default();
    let trace = bursty_trace();

    let baseline = controller(scfg).run(&trace);

    let (null_sink, _null) = SharedSink::new(NullSink);
    let with_null = controller(scfg).with_sink(null_sink).run(&trace);
    assert_metrics_identical(&baseline, &with_null);

    let (rec_sink, recorder) = SharedSink::new(TraceRecorder::new());
    let with_recorder = controller(scfg).with_sink(rec_sink).run(&trace);
    assert_metrics_identical(&baseline, &with_recorder);

    let (reg_sink, registry) = SharedSink::new(MetricsRegistry::new());
    let with_registry = controller(scfg).with_sink(reg_sink).run(&trace);
    assert_metrics_identical(&baseline, &with_registry);

    // A bounded ring drops old events but must not perturb the run either.
    let (ring_sink, ring) = SharedSink::new(TraceRecorder::bounded(64));
    let with_ring = controller(scfg).with_sink(ring_sink).run(&trace);
    assert_metrics_identical(&baseline, &with_ring);
    let ring = ring.borrow();
    assert_eq!(ring.len(), 64);
    assert!(
        ring.dropped() > 0,
        "the burst emits far more than 64 events"
    );

    // The shadow stream agrees with the metrics it narrates.
    let events = recorder.borrow().events();
    let completions = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Completed { .. }))
        .count();
    assert_eq!(completions, baseline.completed);
    let arrivals = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Arrival { .. }))
        .count();
    assert_eq!(arrivals, trace.len());
    let unroutable = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Unroutable { .. }))
        .count();
    assert_eq!(unroutable, baseline.unroutable_ids.len());
    let scale_outs = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::ScaleOut { .. }))
        .count();
    assert_eq!(scale_outs, baseline.scale_outs());
    let scale_ins = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::ScaleIn { .. }))
        .count();
    assert_eq!(scale_ins, baseline.scale_ins());
    let commissions = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::ReplicaCommissioned { .. }))
        .count();
    assert_eq!(commissions, baseline.per_replica.len());

    // The registry's counters shadow the same run.
    let registry = registry.borrow();
    assert_eq!(registry.arrivals as usize, trace.len());
    assert_eq!(registry.completed as usize, baseline.completed);
    assert_eq!(
        registry.routed as usize,
        baseline
            .per_replica
            .iter()
            .map(|r| r.assigned)
            .sum::<usize>()
    );
    assert_eq!(registry.scale_outs as usize, baseline.scale_outs());
    assert!(registry.steps > 0);
    assert!(
        !registry.snapshots.is_empty(),
        "the autoscaled run consults ticks, so snapshots must land"
    );
}

#[test]
fn request_timelines_attribute_latency_exactly_and_match_completions() {
    let scfg = SchedulerConfig::default();
    let trace = bursty_trace();
    let (sink, recorder) = SharedSink::new(TraceRecorder::new());
    let metrics = controller(scfg).with_sink(sink).run(&trace);

    let events = recorder.borrow().events();
    let timelines = request_timelines(&events);
    assert_eq!(timelines.len(), metrics.completed);
    for t in &timelines {
        let sum = t.queue_ms() + t.prefill_ms() + t.decode_ms();
        assert!(
            (sum - t.latency_ms()).abs() <= 1e-9 * t.latency_ms().max(1.0),
            "attribution must sum to end-to-end latency: {sum} vs {}",
            t.latency_ms()
        );
        assert!(t.queue_ms() >= 0.0 && t.prefill_ms() >= 0.0 && t.decode_ms() >= 0.0);
        // The serving replica is one the dispatch log routed this id to.
        assert!(metrics.per_replica[t.replica].assigned_ids.contains(&t.id));
    }
    // Pooled attribution agrees with the pooled metrics distributions.
    let mean_latency =
        timelines.iter().map(|t| t.latency_ms()).sum::<f64>() / timelines.len() as f64;
    assert!((mean_latency - metrics.request_latency.mean_ms).abs() < 1e-6);
}

#[test]
fn offline_scheduler_emits_the_same_lifecycle_through_its_sink() {
    use samoyeds_serve::Scheduler;

    let scfg = SchedulerConfig::default();
    let trace = samoyeds_serve::TraceConfig {
        num_requests: 20,
        arrival_rate_rps: 15.0,
        prompt_len_range: (32, 256),
        output_len_range: (4, 16),
        seed: 7,
    }
    .generate();
    let backend = SingleGpuBackend::new(
        DeviceSpec::a100_40g(),
        &MoeModelConfig::qwen2_moe(),
        EngineKind::Samoyeds,
        &scfg,
    );
    let baseline = Scheduler::from_backend(backend.clone(), scfg).run(&trace);

    let (sink, recorder) = SharedSink::new(TraceRecorder::new());
    let traced = Scheduler::from_backend(backend, scfg)
        .with_sink(sink)
        .run(&trace);

    // The offline path is equally unperturbed...
    assert_eq!(baseline.completed.len(), traced.completed.len());
    assert_eq!(baseline.makespan_ms.to_bits(), traced.makespan_ms.to_bits());
    assert_eq!(baseline.steps.len(), traced.steps.len());
    for (a, b) in baseline.completed.iter().zip(&traced.completed) {
        assert_eq!(a.request.id, b.request.id);
        assert_eq!(a.finished_ms.to_bits(), b.finished_ms.to_bits());
    }
    // ...and its stream carries a step span per executed step with the
    // single-GPU cost split (no collectives), plus one first-token and one
    // completion event per request.
    let events = recorder.borrow().events();
    let steps: Vec<_> = events
        .iter()
        .filter_map(|e| match *e {
            TraceEvent::Step {
                total_ms,
                collective_ms,
                intra_island_ms,
                spine_ms,
                ..
            } => Some((total_ms, collective_ms, intra_island_ms, spine_ms)),
            _ => None,
        })
        .collect();
    assert_eq!(steps.len(), baseline.steps.len());
    for ((total, collective, intra, spine), record) in steps.iter().zip(&baseline.steps) {
        assert_eq!(total.to_bits(), record.time_ms.to_bits());
        assert_eq!(*collective, 0.0);
        assert_eq!(*intra, 0.0);
        assert_eq!(*spine, 0.0);
    }
    let first_tokens = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::FirstToken { .. }))
        .count();
    assert_eq!(first_tokens, traced.completed.len());
    let timelines = request_timelines(&events);
    assert_eq!(timelines.len(), traced.completed.len());
    for (t, c) in timelines.iter().zip(&traced.completed) {
        assert_eq!(t.id, c.request.id);
        assert_eq!(t.admitted_ms.to_bits(), c.admitted_ms.to_bits());
        assert_eq!(t.first_token_ms.to_bits(), c.first_token_ms.to_bits());
        assert_eq!(t.finished_ms.to_bits(), c.finished_ms.to_bits());
    }
}
