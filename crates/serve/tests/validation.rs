//! Static-validation coverage for the fleet control plane: every class of
//! invalid configuration is rejected with its documented diagnostic code
//! before any event runs, all problems are surfaced at once, and a valid
//! configuration produces bit-for-bit identical metrics whether or not it
//! was explicitly validated first.

use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::engines::EngineKind;
use samoyeds_serve::{
    ExecutionBackend, FaultKind, FaultSchedule, FaultSpec, FleetConfig, FleetController,
    FleetMetrics, Request, SchedulerConfig, Severity, SingleGpuBackend, SloAutoscaler, TraceConfig,
};

fn replica() -> Box<dyn ExecutionBackend> {
    Box::new(SingleGpuBackend::new(
        DeviceSpec::a100_40g(),
        &MoeModelConfig::qwen2_moe(),
        EngineKind::Samoyeds,
        &SchedulerConfig::default(),
    ))
}

fn controller() -> FleetController {
    FleetController::new(FleetConfig::default()).with_replica(replica())
}

fn short_trace() -> Vec<Request> {
    TraceConfig {
        num_requests: 6,
        ..TraceConfig::default()
    }
    .generate()
}

fn scripted(kind: FaultKind, at_ms: f64) -> FaultSchedule {
    FaultSchedule::Scripted(vec![FaultSpec { at_ms, kind }])
}

#[test]
fn empty_fleet_is_denied() {
    let report = FleetController::new(FleetConfig::default()).validate(&short_trace());
    assert!(report.has("fleet::empty"));
    assert!(!report.passes());
}

type Mutation = fn(&mut FleetConfig);

#[test]
fn degenerate_knobs_each_get_their_code() {
    let cases: [(Mutation, &str); 6] = [
        (|c| c.min_replicas = 0, "fleet::zero-floor"),
        (
            |c| {
                c.min_replicas = 4;
                c.max_replicas = 2;
            },
            "fleet::ceiling-below-floor",
        ),
        (|c| c.tick_ms = 0.0, "fleet::nonpositive-tick"),
        (|c| c.window_ms = -5.0, "fleet::nonpositive-window"),
        (|c| c.warmup_ms = -1.0, "fleet::negative-warmup"),
        (|c| c.max_drain_ticks = 0, "fleet::zero-drain-cap"),
    ];
    for (mutate, code) in cases {
        let mut config = FleetConfig::default();
        mutate(&mut config);
        let report = FleetController::new(config)
            .with_replica(replica())
            .validate(&short_trace());
        assert!(report.has(code), "missing {code}: {}", report.render());
        assert!(!report.passes());
    }
}

#[test]
fn unsorted_trace_is_denied_with_the_offending_indices() {
    let mut trace = short_trace();
    trace.swap(1, 4);
    let report = controller().validate(&trace);
    assert!(report.has("fleet::unsorted-trace"));
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == "fleet::unsorted-trace")
        .expect("diagnostic present");
    assert!(d.context.starts_with("trace["), "context: {}", d.context);
}

#[test]
fn out_of_range_fault_target_is_denied_before_any_event() {
    // One replica, no factory, default ceiling 8: replica 3 can never exist.
    let report = controller()
        .with_faults(
            scripted(FaultKind::ReplicaCrash { replica: 3 }, 100.0),
            Default::default(),
        )
        .validate(&short_trace());
    assert!(
        report.has("fault::replica-out-of-range"),
        "{}",
        report.render()
    );
    assert!(!report.passes());
}

#[test]
fn fault_target_beyond_initial_fleet_with_a_factory_is_a_warning() {
    let report = controller()
        .with_factory(|| replica())
        .with_faults(
            scripted(FaultKind::ReplicaCrash { replica: 3 }, 100.0),
            Default::default(),
        )
        .validate(&short_trace());
    assert!(report.has("fault::replica-never-commissioned"));
    assert!(report.passes(), "a warning must not block the run");
}

#[test]
fn negative_fault_time_and_duration_are_denied() {
    let report = controller()
        .with_faults(
            FaultSchedule::Scripted(vec![
                FaultSpec {
                    at_ms: -10.0,
                    kind: FaultKind::ReplicaCrash { replica: 0 },
                },
                FaultSpec {
                    at_ms: 50.0,
                    kind: FaultKind::LinkDegrade {
                        replica: 0,
                        duration_ms: -1.0,
                    },
                },
            ]),
            Default::default(),
        )
        .validate(&short_trace());
    assert!(report.has("fault::negative-time"));
    assert!(report.has("fault::negative-duration"));
    assert_eq!(report.deny_count(), 2);
}

#[test]
fn fault_past_trace_end_and_empty_partition_are_warnings() {
    let trace = short_trace();
    let last = trace.last().expect("non-empty trace").arrival_ms;
    let report = controller()
        .with_faults(
            scripted(
                FaultKind::IslandPartition {
                    island: 0,
                    replicas: Vec::new(),
                    duration_ms: 100.0,
                },
                last + 10_000.0,
            ),
            Default::default(),
        )
        .validate(&trace);
    assert!(report.has("fault::past-trace-end"));
    assert!(report.has("fault::empty-partition"));
    assert!(report.passes());
    assert!(report
        .diagnostics()
        .iter()
        .all(|d| d.severity == Severity::Warning));
}

#[test]
fn nonpositive_and_unachievable_slos_are_denied() {
    let report = controller()
        .with_autoscaler(SloAutoscaler::new(0.0))
        .validate(&short_trace());
    assert!(report.has("slo::nonpositive"));

    // 0.001 ms is far below any single step an A100 can execute.
    let report = controller()
        .with_autoscaler(SloAutoscaler::new(0.001))
        .validate(&short_trace());
    assert!(report.has("slo::unachievable-ttft"), "{}", report.render());
    // A sane SLO passes the same check.
    let report = controller()
        .with_autoscaler(SloAutoscaler::new(2_000.0))
        .validate(&short_trace());
    assert!(report.passes(), "{}", report.render());
}

#[test]
fn run_panics_listing_every_problem_at_once() {
    let trace = short_trace();
    let controller = FleetController::new(FleetConfig {
        tick_ms: 0.0,
        min_replicas: 4,
        max_replicas: 2,
        ..FleetConfig::default()
    })
    .with_replica(replica());
    let err =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || controller.run(&trace)))
            .expect_err("run must reject the configuration");
    let message = err
        .downcast_ref::<String>()
        .cloned()
        .expect("panic payload is the rendered report");
    // Both problems in one panic — not just the first assert.
    assert!(message.contains("fleet::nonpositive-tick"), "{message}");
    assert!(message.contains("fleet::ceiling-below-floor"), "{message}");
}

#[test]
fn valid_configs_are_clean_and_metrics_are_bit_for_bit_unchanged() {
    let trace = short_trace();
    let report = controller().validate(&trace);
    assert!(report.is_clean(), "{}", report.render());

    // Explicitly validating first must not perturb the run in any way.
    let direct = controller().run(&trace);
    let validated = {
        let c = controller();
        c.validate(&trace).assert_valid();
        c.run(&trace)
    };
    assert_bitwise_equal(&direct, &validated);
}

/// Field-by-field bit-for-bit comparison (FleetMetrics has no PartialEq).
fn assert_bitwise_equal(a: &FleetMetrics, b: &FleetMetrics) {
    assert_eq!(a.replicas, b.replicas);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.rejected, b.rejected);
    assert_eq!(
        a.output_tokens_per_s.to_bits(),
        b.output_tokens_per_s.to_bits()
    );
    assert_eq!(a.makespan_ms.to_bits(), b.makespan_ms.to_bits());
    assert_eq!(
        a.request_latency.p50_ms.to_bits(),
        b.request_latency.p50_ms.to_bits()
    );
    assert_eq!(
        a.request_latency.p95_ms.to_bits(),
        b.request_latency.p95_ms.to_bits()
    );
    assert_eq!(a.ttft.p50_ms.to_bits(), b.ttft.p50_ms.to_bits());
    assert_eq!(a.ttft.p95_ms.to_bits(), b.ttft.p95_ms.to_bits());
    assert_eq!(a.tpot.p50_ms.to_bits(), b.tpot.p50_ms.to_bits());
    assert_eq!(a.tpot.p95_ms.to_bits(), b.tpot.p95_ms.to_bits());
    assert_eq!(a.unroutable_ids, b.unroutable_ids);
    assert_eq!(a.failed_ids, b.failed_ids);
    assert_eq!(a.drain_incomplete, b.drain_incomplete);
    assert_eq!(a.per_replica.len(), b.per_replica.len());
    for (ra, rb) in a.per_replica.iter().zip(&b.per_replica) {
        assert_eq!(ra.assigned_ids, rb.assigned_ids);
        assert_eq!(ra.ready_ms.to_bits(), rb.ready_ms.to_bits());
    }
}
