//! `simlint` — the workspace's determinism linter.
//!
//! Every guarantee the simulator ships — bit-for-bit event/tick
//! equivalence, replayable ChaCha fault schedules, the CI-gated perf
//! trajectory — rests on the codebase staying deterministic. This crate is
//! the cheap static gate that keeps it that way: a dependency-free
//! line/token-level scanner (no `syn`; the workspace vendors only
//! stand-ins) that walks Rust sources and flags the constructs that have
//! historically turned into flaky equivalence tests.
//!
//! The rules (see [`rules`]):
//!
//! * `hashmap` — no `std::collections` hash containers in sim crates:
//!   their iteration order is nondeterministic across runs and toolchains.
//! * `wallclock` — no wall-clock reads outside `crates/bench/src/bin`:
//!   simulated time is the only clock a deterministic run may consult.
//! * `unseeded-rng` — no `thread_rng` / `rand::random` / `from_entropy`:
//!   every random draw must come from an explicitly seeded generator.
//! * `float-eq` — no raw `==` / `!=` against float literals: exact
//!   comparisons against cost values belong in the pinned equivalence
//!   suites (`assert_eq!`), not in control flow.
//! * `hot-unwrap` — no `.unwrap()` in the `serve::events` /
//!   `serve::faults` hot paths: a poisoned queue should surface as a
//!   diagnostic, not a panic mid-sweep.
//! * `event-order` — the `FleetEvent` same-instant class table in
//!   `serve::events` must match the canonical order this crate embeds
//!   (warm-ups before retirements before faults before recoveries before
//!   KV-transfer landings before control ticks before arrivals before step
//!   completions): a reshuffled or unregistered class arm silently
//!   reorders same-instant events and breaks bit-for-bit replay.
//!
//! Intentional violations are waived in place with an escape comment that
//! must carry a reason:
//!
//! ```text
//! // simlint::allow(float-eq): exact replay pin, both sides produced by
//! // the same deterministic pricing path
//! ```
//!
//! A waiver suppresses that rule on its own line (trailing comment) and on
//! the next line carrying code — a multi-line reason does not break the
//! coverage. A waiver without a reason, or naming a rule that does not
//! exist, is itself a deny (`allow-without-reason` / `unknown-rule`), so
//! the escape hatch cannot rot into an unexplained blanket.
//!
//! Diagnostics render rustc-style and sort deterministically by
//! `(file, line, rule)` regardless of scan order, so CI output is stable:
//!
//! ```text
//! crates/serve/src/fleet.rs:712: deny[simlint::hashmap]: std::collections hash containers iterate in nondeterministic order
//! ```
//!
//! Scanning is purely lexical: string literals and comments are masked
//! before token matching, so prose mentioning `HashMap` never self-flags,
//! and `r#"…"#` raw strings, nested block comments, char literals and
//! lifetimes are all handled.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Rule id: `std::collections::HashMap` / `HashSet` in sim code.
pub const RULE_HASHMAP: &str = "hashmap";
/// Rule id: `Instant::now` / `SystemTime` outside `crates/bench/src/bin`.
pub const RULE_WALLCLOCK: &str = "wallclock";
/// Rule id: `thread_rng` / `rand::random` / `from_entropy`.
pub const RULE_UNSEEDED_RNG: &str = "unseeded-rng";
/// Rule id: raw `==` / `!=` against a float literal.
pub const RULE_FLOAT_EQ: &str = "float-eq";
/// Rule id: `.unwrap()` in the `serve::events` / `serve::faults` hot paths.
pub const RULE_HOT_UNWRAP: &str = "hot-unwrap";
/// Rule id: a `FleetEvent` class arm in `serve::events` disagreeing with
/// the canonical same-instant ordering table ([`EVENT_ORDER`]).
pub const RULE_EVENT_ORDER: &str = "event-order";

/// The canonical same-instant ordering of `FleetEvent` classes: at one
/// timestamp, warm-ups land before retirements, before faults, before
/// recoveries, before KV-transfer landings, before control ticks, before
/// arrivals, before step completions. `serve::events::FleetEvent::class`
/// must map each variant to exactly this value; the `event-order` rule
/// flags any arm that drifts, and a new variant must be registered here —
/// consciously choosing its slot in the hierarchy — before the linter
/// passes.
pub const EVENT_ORDER: &[(&str, u64)] = &[
    ("WarmupComplete", 0),
    ("DrainRetire", 1),
    ("Fault", 2),
    ("FaultRecovery", 3),
    ("KvTransferComplete", 4),
    ("ControlTick", 5),
    ("Arrival", 6),
    ("StepCompletion", 7),
];
/// Meta rule id: a `simlint::allow` escape missing its `: reason` tail.
pub const RULE_ALLOW_WITHOUT_REASON: &str = "allow-without-reason";
/// Meta rule id: a `simlint::allow` escape naming a rule that does not
/// exist (usually a typo, which would otherwise silently suppress nothing).
pub const RULE_UNKNOWN_RULE: &str = "unknown-rule";

/// One lint rule: a stable id (as named in `deny[simlint::<id>]`
/// diagnostics and `simlint::allow(<id>)` escapes), a one-line summary and
/// the rationale for why the rule exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// Stable rule id.
    pub id: &'static str,
    /// One-line summary (the diagnostic message).
    pub summary: &'static str,
    /// Why the rule exists (rendered as a rustc-style `= note:`).
    pub rationale: &'static str,
}

const RULES: &[Rule] = &[
    Rule {
        id: RULE_HASHMAP,
        summary: "std::collections hash containers iterate in nondeterministic order",
        rationale: "a stray iteration over a hash container silently breaks bit-for-bit \
                    replay; use BTreeMap/BTreeSet or an indexed Vec instead",
    },
    Rule {
        id: RULE_WALLCLOCK,
        summary: "wall-clock read in simulation code",
        rationale: "simulated time is the only clock a deterministic run may consult; \
                    wall-clock timing belongs in crates/bench/src/bin harnesses only",
    },
    Rule {
        id: RULE_UNSEEDED_RNG,
        summary: "unseeded random number generation",
        rationale: "every random draw must come from an explicitly seeded generator \
                    (ChaCha in this workspace) so schedules and traces replay bit for bit",
    },
    Rule {
        id: RULE_FLOAT_EQ,
        summary: "raw == / != against a float literal",
        rationale: "exact float comparison in control flow is usually a bug; compare with \
                    a tolerance, use total_cmp, or waive intentional exact-replay pins \
                    (comparisons against literal zero are exempt in the numeric-kernel \
                    crates, where exact zero is the sparsity-structure test)",
    },
    Rule {
        id: RULE_HOT_UNWRAP,
        summary: ".unwrap() on the event-queue / fault-injection hot path",
        rationale: "a poisoned queue or schedule should surface as a diagnostic, not a \
                    panic mid-sweep; handle the None/Err arm explicitly",
    },
    Rule {
        id: RULE_EVENT_ORDER,
        summary: "FleetEvent class arm disagrees with the canonical same-instant order",
        rationale: "same-instant events drain in class order; an arm that drifts from the \
                    canonical table (or a variant the table does not know) silently \
                    reorders coincident events and breaks bit-for-bit replay — register \
                    the variant's slot in simlint's EVENT_ORDER table",
    },
    Rule {
        id: RULE_ALLOW_WITHOUT_REASON,
        summary: "simlint::allow escape without a reason",
        rationale: "waivers must document why the violation is intentional: \
                    `// simlint::allow(<rule>): <reason>`",
    },
    Rule {
        id: RULE_UNKNOWN_RULE,
        summary: "simlint::allow escape naming an unknown rule",
        rationale: "an allow for a rule that does not exist suppresses nothing and \
                    usually hides a typo",
    },
];

/// The full rule table, in stable order (the six source rules first, then
/// the two meta rules governing the escape comments themselves).
pub fn rules() -> &'static [Rule] {
    RULES
}

/// Look up a rule's rationale by id.
pub fn rationale(rule_id: &str) -> Option<&'static str> {
    RULES.iter().find(|r| r.id == rule_id).map(|r| r.rationale)
}

/// One diagnostic: a rule violation at a file/line.
///
/// The derived ordering — file, then line, then rule id, then message —
/// is the canonical output order; [`scan_roots`] sorts with it so the
/// rendered report is identical for any scan order (pinned by proptest).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Lint {
    /// Path of the offending file, as given to [`scan_file`].
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule's id.
    pub rule: &'static str,
    /// The diagnostic message.
    pub message: String,
}

impl Lint {
    /// Render rustc-style: `file:line: deny[simlint::rule]: message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: deny[simlint::{}]: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A parsed `simlint::allow(rule): reason` escape comment.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Allow {
    /// Line the escape comment sits on.
    line: usize,
    /// The rule it waives.
    rule: String,
    /// Whether the `: reason` tail is present and non-empty.
    has_reason: bool,
}

/// A token of masked source: just enough lexical structure for the rules.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num { float: bool, zero: bool },
    Op(String),
}

/// Scan one file's contents. `path` is used for diagnostics and for the
/// path-scoped rules (`wallclock` is exempt under `crates/bench/src/bin/`;
/// `hot-unwrap` applies only to `crates/serve/src/events.rs` and
/// `crates/serve/src/faults.rs`). Pure: no filesystem access.
pub fn scan_file(path: &str, content: &str) -> Vec<Lint> {
    let path_norm = path.replace('\\', "/");
    let wallclock_exempt = path_norm.contains("crates/bench/src/bin/");
    let unwrap_applies = ["crates/serve/src/events.rs", "crates/serve/src/faults.rs"]
        .iter()
        .any(|p| path_norm.ends_with(p));
    // In the numeric-kernel crates an exact comparison against literal zero
    // is the sparsity-structure test itself (`v != 0.0` counts nonzeros) —
    // correct and idiomatic, so only nonzero literals flag there. The
    // simulation / control-plane crates get the strict rule.
    let zero_exempt = [
        "crates/sparse/",
        "crates/sptc/",
        "crates/kernels/",
        "crates/moe/",
        "crates/pruning/",
        "crates/gpu-sim/",
    ]
    .iter()
    .any(|p| path_norm.contains(p));

    let (masked, allows) = mask_and_allows(content);
    let mut lints = Vec::new();
    let push = |lints: &mut Vec<Lint>, line: usize, rule: &'static str| {
        let summary = RULES
            .iter()
            .find(|r| r.id == rule)
            .map(|r| r.summary)
            .unwrap_or(rule);
        lints.push(Lint {
            file: path.to_string(),
            line,
            rule,
            message: summary.to_string(),
        });
    };

    // The event-order rule is scoped to the one file owning the class
    // table; every `FleetEvent::<Variant> … => <int>` arm there must agree
    // with the canonical EVENT_ORDER slots.
    let event_order_applies = path_norm.ends_with("crates/serve/src/events.rs");

    for (idx, line_text) in masked.lines().enumerate() {
        let line = idx + 1;
        if event_order_applies {
            if let Some((variant, class)) = event_class_arm(line_text) {
                match EVENT_ORDER.iter().find(|(v, _)| *v == variant) {
                    Some(&(_, want)) if want == class => {}
                    Some(&(_, want)) => lints.push(Lint {
                        file: path.to_string(),
                        line,
                        rule: RULE_EVENT_ORDER,
                        message: format!(
                            "FleetEvent::{variant} maps to same-instant class {class}, but \
                             the canonical order pins it to {want}"
                        ),
                    }),
                    None => lints.push(Lint {
                        file: path.to_string(),
                        line,
                        rule: RULE_EVENT_ORDER,
                        message: format!(
                            "FleetEvent::{variant} is not in simlint's canonical \
                             same-instant order table; register its slot in EVENT_ORDER"
                        ),
                    }),
                }
            }
        }
        let toks = tokenize_line(line_text);
        for (t, tok) in toks.iter().enumerate() {
            match tok {
                Tok::Ident(name) => match name.as_str() {
                    "HashMap" | "HashSet" => push(&mut lints, line, RULE_HASHMAP),
                    "SystemTime" if !wallclock_exempt => push(&mut lints, line, RULE_WALLCLOCK),
                    "Instant"
                        if !wallclock_exempt
                            && is_op(toks.get(t + 1), "::")
                            && is_ident(toks.get(t + 2), "now") =>
                    {
                        push(&mut lints, line, RULE_WALLCLOCK)
                    }
                    "thread_rng" | "from_entropy" => push(&mut lints, line, RULE_UNSEEDED_RNG),
                    "random"
                        if t >= 2
                            && is_op(toks.get(t - 1), "::")
                            && is_ident(toks.get(t - 2), "rand") =>
                    {
                        push(&mut lints, line, RULE_UNSEEDED_RNG)
                    }
                    "unwrap"
                        if unwrap_applies
                            && t >= 1
                            && is_op(toks.get(t - 1), ".")
                            && is_op(toks.get(t + 1), "(") =>
                    {
                        push(&mut lints, line, RULE_HOT_UNWRAP)
                    }
                    _ => {}
                },
                Tok::Op(op) if op == "==" || op == "!=" => {
                    let flags = |tok: Option<&Tok>| match tok {
                        Some(Tok::Num { float: true, zero }) => !(*zero && zero_exempt),
                        _ => false,
                    };
                    if (t >= 1 && flags(toks.get(t - 1))) || flags(toks.get(t + 1)) {
                        push(&mut lints, line, RULE_FLOAT_EQ);
                    }
                }
                _ => {}
            }
        }
    }

    // Apply waivers: an allow covers its own line (trailing comment) and
    // the next line carrying any code — intermediate comment-only lines
    // (the waiver's own multi-line reason) do not break the coverage. A
    // waiver suppresses even when malformed — the malformation is reported
    // on its own line instead, so one fix (adding the reason) resolves the
    // file rather than uncovering a second diagnostic.
    let masked_lines: Vec<&str> = masked.lines().collect();
    let covered = |a: &Allow, line: usize| {
        if a.line == line {
            return true;
        }
        if line < a.line {
            return false;
        }
        // `line` must be the first code-bearing line below the waiver.
        masked_lines[a.line.min(masked_lines.len())..line.saturating_sub(1)]
            .iter()
            .all(|l| l.trim().is_empty())
    };
    lints.retain(|l| {
        !allows
            .iter()
            .any(|a| a.rule == l.rule && covered(a, l.line))
    });
    for a in &allows {
        if !RULES.iter().any(|r| r.id == a.rule) {
            lints.push(Lint {
                file: path.to_string(),
                line: a.line,
                rule: RULE_UNKNOWN_RULE,
                message: format!("simlint::allow names unknown rule `{}`", a.rule),
            });
        } else if !a.has_reason {
            lints.push(Lint {
                file: path.to_string(),
                line: a.line,
                rule: RULE_ALLOW_WITHOUT_REASON,
                message: format!(
                    "simlint::allow({}) has no reason; write `// simlint::allow({}): <why>`",
                    a.rule, a.rule
                ),
            });
        }
    }
    lints.sort();
    lints
}

/// Directory names the walker never descends into: build output, the
/// vendored stand-ins (external code held to external standards), the
/// linter's own seeded-violation fixtures, and integration-test /
/// criterion-bench trees (not simulation hot paths; unit tests inside
/// `src/` files are still scanned).
pub const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", "tests", "benches"];

/// Walk `roots` (files or directories, e.g. `["crates", "examples"]`),
/// scan every `.rs` file outside [`SKIP_DIRS`], and return the file count
/// plus all diagnostics in canonical order.
pub fn scan_roots<S: AsRef<str>>(roots: &[S]) -> io::Result<(usize, Vec<Lint>)> {
    let mut files: Vec<PathBuf> = Vec::new();
    for root in roots {
        let path = Path::new(root.as_ref());
        if !path.exists() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file or directory: {}", root.as_ref()),
            ));
        }
        collect(path, &mut files)?;
    }
    files.sort();
    files.dedup();
    let mut lints = Vec::new();
    for file in &files {
        let content = fs::read_to_string(file)?;
        lints.extend(scan_file(&file.to_string_lossy(), &content));
    }
    lints.sort();
    Ok((files.len(), lints))
}

fn collect(path: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    if path.is_dir() {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if SKIP_DIRS.contains(&name) {
            return Ok(());
        }
        let mut entries: Vec<PathBuf> = fs::read_dir(path)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        entries.sort();
        for entry in entries {
            collect(&entry, files)?;
        }
    } else if path.extension().is_some_and(|e| e == "rs") {
        files.push(path.to_path_buf());
    }
    Ok(())
}

/// Blank out comments and string/char literals (preserving newlines so
/// line numbers survive), collecting `simlint::allow` escapes from the
/// comment text as it goes.
fn mask_and_allows(content: &str) -> (String, Vec<Allow>) {
    let chars: Vec<char> = content.chars().collect();
    let mut out = String::with_capacity(content.len());
    let mut allows = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            out.push('\n');
            line += 1;
            i += 1;
            continue;
        }
        // Line comment (covers /// and //! doc comments too).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            parse_allows(&text, line, &mut allows);
            push_spaces(&mut out, i - start);
            continue;
        }
        // Block comment, possibly nested and multi-line; escapes are
        // parsed per contained line so their line numbers stay exact.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1usize;
            let mut comment_line = String::new();
            out.push_str("  ");
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    comment_line.push_str("/*");
                    out.push_str("  ");
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.push_str("  ");
                    i += 2;
                } else if chars[i] == '\n' {
                    parse_allows(&comment_line, line, &mut allows);
                    comment_line.clear();
                    out.push('\n');
                    line += 1;
                    i += 1;
                } else {
                    comment_line.push(chars[i]);
                    out.push(' ');
                    i += 1;
                }
            }
            parse_allows(&comment_line, line, &mut allows);
            continue;
        }
        // Raw (and raw byte) strings: r"…", r#"…"#, br##"…"##.
        let prev_is_ident = i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
        if (c == 'r' || c == 'b') && !prev_is_ident {
            let mut j = i;
            if chars[j] == 'b' {
                j += 1;
            }
            if chars.get(j) == Some(&'r') {
                j += 1;
                let mut hashes = 0usize;
                while chars.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if chars.get(j) == Some(&'"') {
                    // Confirmed raw string: mask until `"` + `#` * hashes.
                    push_spaces(&mut out, j + 1 - i);
                    i = j + 1;
                    'raw: while i < chars.len() {
                        if chars[i] == '\n' {
                            out.push('\n');
                            line += 1;
                            i += 1;
                            continue;
                        }
                        if chars[i] == '"' {
                            let mut k = 0usize;
                            while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                                k += 1;
                            }
                            if k == hashes {
                                push_spaces(&mut out, 1 + hashes);
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        out.push(' ');
                        i += 1;
                    }
                    continue;
                }
            }
        }
        // Ordinary (and byte) string literal with escapes.
        if c == '"' {
            out.push(' ');
            i += 1;
            while i < chars.len() {
                if chars[i] == '\\' {
                    push_spaces(&mut out, 1);
                    i += 1;
                    if i < chars.len() {
                        if chars[i] == '\n' {
                            out.push('\n');
                            line += 1;
                        } else {
                            out.push(' ');
                        }
                        i += 1;
                    }
                    continue;
                }
                if chars[i] == '\n' {
                    out.push('\n');
                    line += 1;
                    i += 1;
                    continue;
                }
                if chars[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                }
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Char literal vs lifetime/label: 'x' and '\n' are literals,
        // 'static is a lifetime (masked quote, identifier kept).
        if c == '\'' {
            if chars.get(i + 1) == Some(&'\\') {
                out.push_str("  ");
                i += 2;
                while i < chars.len() && chars[i] != '\'' && chars[i] != '\n' {
                    out.push(' ');
                    i += 1;
                }
                if chars.get(i) == Some(&'\'') {
                    out.push(' ');
                    i += 1;
                }
                continue;
            }
            if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
                out.push_str("   ");
                i += 3;
                continue;
            }
            out.push(' ');
            i += 1;
            continue;
        }
        out.push(c);
        i += 1;
    }
    (out, allows)
}

fn push_spaces(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push(' ');
    }
}

/// Extract a `simlint::allow(rule): reason` escape from one comment line.
///
/// The directive must be the first thing in the comment (after the `//`,
/// `/*`, doc-comment or decoration characters) — prose *mentioning* the
/// syntax mid-sentence, as this crate's own docs do, is not a waiver.
fn parse_allows(text: &str, line: usize, allows: &mut Vec<Allow>) {
    const NEEDLE: &str = "simlint::allow(";
    let body = text.trim_start_matches(['/', '!', '*', ' ', '\t']);
    let Some(after) = body.strip_prefix(NEEDLE) else {
        return;
    };
    let Some(close) = after.find(')') else {
        return;
    };
    let rule = after[..close].trim().to_string();
    let tail = &after[close + 1..];
    let has_reason = tail
        .trim_start()
        .strip_prefix(':')
        .is_some_and(|r| !r.trim().is_empty());
    allows.push(Allow {
        line,
        rule,
        has_reason,
    });
}

/// Parse a `FleetEvent::<Variant> … => <int>` match arm from one masked
/// line, returning the variant name and the integer class it maps to.
/// Only arms whose right-hand side starts with an integer literal match —
/// construction sites (`FleetEvent::Arrival { request }`) and non-numeric
/// arms are not class-table entries and are ignored.
fn event_class_arm(line: &str) -> Option<(&str, u64)> {
    let rest = line.split_once("FleetEvent")?.1;
    let rest = rest.trim_start().strip_prefix("::")?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    let variant = &rest[..end];
    if variant.is_empty() {
        return None;
    }
    let after_arrow = rest[end..].split_once("=>")?.1.trim_start();
    let digits: &str = &after_arrow[..after_arrow
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(after_arrow.len())];
    if digits.is_empty() {
        return None;
    }
    Some((variant, digits.parse().ok()?))
}

fn is_op(tok: Option<&Tok>, op: &str) -> bool {
    matches!(tok, Some(Tok::Op(o)) if o == op)
}

fn is_ident(tok: Option<&Tok>, name: &str) -> bool {
    matches!(tok, Some(Tok::Ident(n)) if n == name)
}

/// Tokenize one masked line into identifiers, numbers and operators. Only
/// `==`, `!=` and `::` are recognised as two-character operators — all the
/// rules need.
fn tokenize_line(text: &str) -> Vec<Tok> {
    let cs: Vec<char> = text.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < cs.len() {
        let c = cs[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < cs.len() && (cs[i].is_alphanumeric() || cs[i] == '_') {
                i += 1;
            }
            toks.push(Tok::Ident(cs[start..i].iter().collect()));
        } else if c.is_ascii_digit() {
            let mut float = false;
            let mantissa_start = i;
            while i < cs.len() && (cs[i].is_ascii_digit() || cs[i] == '_') {
                i += 1;
            }
            // Fractional part — but not the `..` of a range expression.
            if cs.get(i) == Some(&'.') && cs.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                float = true;
                i += 1;
                while i < cs.len() && (cs[i].is_ascii_digit() || cs[i] == '_') {
                    i += 1;
                }
            }
            let zero = !cs[mantissa_start..i]
                .iter()
                .any(|d| ('1'..='9').contains(d));
            // Exponent.
            if matches!(cs.get(i), Some('e') | Some('E')) {
                let sign = matches!(cs.get(i + 1), Some('+') | Some('-'));
                let digit_at = if sign { i + 2 } else { i + 1 };
                if cs.get(digit_at).is_some_and(|d| d.is_ascii_digit()) {
                    float = true;
                    i = digit_at;
                    while i < cs.len() && (cs[i].is_ascii_digit() || cs[i] == '_') {
                        i += 1;
                    }
                }
            }
            // Type suffix (f32/f64 makes it a float; 0x… hex digits and
            // integer suffixes are swallowed without changing the kind).
            let suffix_start = i;
            while i < cs.len() && (cs[i].is_alphanumeric() || cs[i] == '_') {
                i += 1;
            }
            if cs.get(suffix_start) == Some(&'f') {
                float = true;
            }
            toks.push(Tok::Num { float, zero });
        } else {
            let two: Option<&str> = match (c, cs.get(i + 1)) {
                ('=', Some('=')) => Some("=="),
                ('!', Some('=')) => Some("!="),
                (':', Some(':')) => Some("::"),
                _ => None,
            };
            if let Some(op) = two {
                toks.push(Tok::Op(op.to_string()));
                i += 2;
            } else {
                toks.push(Tok::Op(c.to_string()));
                i += 1;
            }
        }
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_spares_strings_comments_and_lifetimes() {
        let src = "let a: &'static str = \"HashMap\"; // HashMap here too\n\
                   /* Instant::now in a block\ncomment */ let b = 'x';\n\
                   let r = r#\"thread_rng\"#;\n";
        assert!(scan_file("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn each_rule_fires_on_real_code() {
        let lints = scan_file(
            "crates/x/src/lib.rs",
            "use std::collections::HashMap;\nlet t = std::time::Instant::now();\n\
             let r = rand::thread_rng();\nif cost == 1.5 {}\n",
        );
        let rules: Vec<&str> = lints.iter().map(|l| l.rule).collect();
        assert_eq!(
            rules,
            vec![
                RULE_HASHMAP,
                RULE_WALLCLOCK,
                RULE_UNSEEDED_RNG,
                RULE_FLOAT_EQ
            ]
        );
    }

    #[test]
    fn range_and_integer_comparisons_do_not_flag() {
        let src = "for i in 0..10 { if i == 3 {} }\nlet ok = n != 42;\nlet f = x == y;\n";
        assert!(scan_file("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses_same_and_next_line() {
        let src = "// simlint::allow(hashmap): membership only\n\
                   use std::collections::HashSet;\n\
                   let x = 1.0; let eq = x == 1.0; // simlint::allow(float-eq): pin\n";
        assert!(scan_file("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn hot_unwrap_is_path_scoped() {
        let src = "let v = q.pop().unwrap();\n";
        assert!(scan_file("crates/x/src/lib.rs", src).is_empty());
        let lints = scan_file("crates/serve/src/events.rs", src);
        assert_eq!(lints.len(), 1);
        assert_eq!(lints[0].rule, RULE_HOT_UNWRAP);
    }

    #[test]
    fn wallclock_is_exempt_under_bench_bins() {
        let src = "let t = std::time::Instant::now();\n";
        assert!(scan_file("crates/bench/src/bin/experiments.rs", src).is_empty());
        assert_eq!(scan_file("crates/bench/src/experiments.rs", src).len(), 1);
    }

    #[test]
    fn event_order_pins_the_class_table_to_the_canonical_slots() {
        // A faithful arm is clean; scheduling sites that construct events
        // (no integer RHS) are ignored.
        let good = "FleetEvent::KvTransferComplete { .. } => 4,\n\
                    queue.push(at, FleetEvent::KvTransferComplete { transfer });\n";
        assert!(scan_file("crates/serve/src/events.rs", good).is_empty());
        // A drifted arm and an unregistered variant both flag.
        for bad in [
            "FleetEvent::KvTransferComplete { .. } => 5,\n",
            "FleetEvent::Unscheduled { .. } => 9,\n",
        ] {
            let lints = scan_file("crates/serve/src/events.rs", bad);
            assert_eq!(lints.len(), 1, "{bad}");
            assert_eq!(lints[0].rule, RULE_EVENT_ORDER);
        }
        // The rule is scoped to the file owning the class table.
        assert!(scan_file(
            "crates/serve/src/fleet.rs",
            "FleetEvent::KvTransferComplete { .. } => 5,\n"
        )
        .is_empty());
    }

    #[test]
    fn event_order_table_covers_every_class_arm_in_the_real_file() {
        // The canonical table and the real `class()` match must stay in
        // lockstep: every variant in events.rs appears in EVENT_ORDER with
        // its slot, and every table entry appears in the file (a deleted
        // variant should be retired from the table too).
        let src = include_str!("../../serve/src/events.rs");
        let (masked, _) = mask_and_allows(src);
        let arms: Vec<(&str, u64)> = masked.lines().filter_map(event_class_arm).collect();
        assert_eq!(arms.len(), EVENT_ORDER.len());
        for (variant, class) in &arms {
            assert!(
                EVENT_ORDER.contains(&(variant, *class)),
                "events.rs arm {variant} => {class} is not in EVENT_ORDER"
            );
        }
    }

    #[test]
    fn render_is_rustc_style() {
        let lints = scan_file("crates/x/src/lib.rs", "use std::collections::HashMap;\n");
        assert_eq!(
            lints[0].render(),
            "crates/x/src/lib.rs:1: deny[simlint::hashmap]: std::collections hash \
             containers iterate in nondeterministic order"
        );
    }
}
