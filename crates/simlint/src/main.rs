//! The `simlint` CLI: scan Rust sources for determinism-rule violations
//! and exit non-zero on any deny.
//!
//! ```text
//! cargo run -p simlint -- crates examples   # the CI invocation
//! cargo run -p simlint                      # same (default roots)
//! cargo run -p simlint -- --rules           # print the rule table
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--rules") {
        for rule in simlint::rules() {
            println!("simlint::{:<22} {}", rule.id, rule.summary);
            println!("{:31}{}", "", rule.rationale);
        }
        return ExitCode::SUCCESS;
    }
    let roots = if args.is_empty() {
        vec!["crates".to_string(), "examples".to_string()]
    } else {
        args
    };
    match simlint::scan_roots(&roots) {
        Ok((files, lints)) => {
            for lint in &lints {
                eprintln!("{}", lint.render());
                if let Some(rationale) = simlint::rationale(lint.rule) {
                    eprintln!("  = note: {rationale}");
                }
                eprintln!(
                    "  = help: waive intentionally with `// simlint::allow({}): <reason>`",
                    lint.rule
                );
            }
            if lints.is_empty() {
                println!(
                    "simlint: {files} files clean under {} rules",
                    simlint::rules().len()
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "simlint: {} deny diagnostic(s) across {files} scanned files",
                    lints.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("simlint: {err}");
            ExitCode::FAILURE
        }
    }
}
