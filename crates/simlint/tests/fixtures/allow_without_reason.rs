// Fixture: a waiver missing its `: reason` tail — the waiver suppresses,
// but earns its own `allow-without-reason` diagnostic.
// simlint::allow(hashmap)
fn build() -> std::collections::HashMap<u32, u32> {
    Default::default()
}
