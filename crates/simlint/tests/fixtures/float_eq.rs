// Fixture: one `float-eq` violation (nonzero literal).
fn check(v: f64) -> bool {
    v == 0.5
}
