// Fixture: the same comparison as float_eq.rs, waived with a reason.
fn check(v: f64) -> bool {
    // simlint::allow(float-eq): fixture — exact pin against a constructed value
    v == 0.5
}
