// Fixture: one `hashmap` violation, nothing else.
fn build() -> std::collections::HashMap<u32, u32> {
    Default::default()
}
