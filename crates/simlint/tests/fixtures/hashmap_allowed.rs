// Fixture: the same violation as hashmap.rs, waived with a reason.
// simlint::allow(hashmap): fixture — iteration order is never observed
fn build() -> std::collections::HashMap<u32, u32> {
    Default::default()
}
