// Fixture: one `.unwrap()` — a `hot-unwrap` violation only when scanned
// under a hot-path label (crates/serve/src/events.rs or faults.rs).
fn head(v: &[u32]) -> u32 {
    *v.first().unwrap()
}
