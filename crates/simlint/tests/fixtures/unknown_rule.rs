// Fixture: a waiver naming a rule that does not exist (a typo that would
// otherwise silently suppress nothing).
// simlint::allow(hashmpa): typo in the rule id
fn nothing() {}
