// Fixture: one `unseeded-rng` violation.
fn draw() -> u64 {
    thread_rng().next_u64()
}
