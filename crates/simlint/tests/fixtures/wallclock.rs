// Fixture: one `wallclock` violation.
fn tick() -> f64 {
    let started = std::time::Instant::now();
    started.elapsed().as_secs_f64()
}
