//! Fixture-driven coverage of every lint rule, the acceptance path (a
//! `HashMap` introduced into the fleet controller is caught with a
//! rustc-style diagnostic and a non-zero exit), and a proptest pinning
//! that the rendered report is identical for any scan order.

use proptest::prelude::*;
use simlint::{
    scan_file, scan_roots, Lint, RULE_ALLOW_WITHOUT_REASON, RULE_EVENT_ORDER, RULE_FLOAT_EQ,
    RULE_HASHMAP, RULE_HOT_UNWRAP, RULE_UNKNOWN_RULE, RULE_UNSEEDED_RNG, RULE_WALLCLOCK,
};
use std::path::{Path, PathBuf};
use std::process::Command;

/// The repository root (two levels up from this crate's manifest).
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Scan a fixture under a synthetic rule-neutral path.
fn scan_fixture(content: &str) -> Vec<Lint> {
    scan_file("crates/example/src/fixture.rs", content)
}

#[test]
fn each_fixture_fires_its_rule_exactly_once() {
    let cases = [
        (include_str!("fixtures/hashmap.rs"), RULE_HASHMAP),
        (include_str!("fixtures/wallclock.rs"), RULE_WALLCLOCK),
        (include_str!("fixtures/unseeded_rng.rs"), RULE_UNSEEDED_RNG),
        (include_str!("fixtures/float_eq.rs"), RULE_FLOAT_EQ),
        (
            include_str!("fixtures/allow_without_reason.rs"),
            RULE_ALLOW_WITHOUT_REASON,
        ),
        (include_str!("fixtures/unknown_rule.rs"), RULE_UNKNOWN_RULE),
    ];
    for (content, rule) in cases {
        let lints = scan_fixture(content);
        assert_eq!(
            lints.len(),
            1,
            "expected exactly one {rule} lint, got: {lints:?}"
        );
        assert_eq!(lints[0].rule, rule);
    }
}

#[test]
fn allowed_fixtures_are_clean() {
    for content in [
        include_str!("fixtures/hashmap_allowed.rs"),
        include_str!("fixtures/float_eq_allowed.rs"),
    ] {
        let lints = scan_fixture(content);
        assert!(lints.is_empty(), "waiver did not suppress: {lints:?}");
    }
}

#[test]
fn hot_unwrap_fires_only_under_hot_path_labels() {
    let content = include_str!("fixtures/hot_unwrap.rs");
    // Rule-neutral path: `.unwrap()` is fine outside the hot paths.
    assert!(scan_fixture(content).is_empty());
    for hot in ["crates/serve/src/events.rs", "crates/serve/src/faults.rs"] {
        let lints = scan_file(hot, content);
        assert_eq!(lints.len(), 1, "expected one hot-unwrap lint in {hot}");
        assert_eq!(lints[0].rule, RULE_HOT_UNWRAP);
    }
}

/// The acceptance criterion: the real `crates/serve/src/fleet.rs` is clean
/// today, and introducing a `HashMap` into it produces a rustc-style
/// `deny[simlint::hashmap]` diagnostic pointing at the file.
#[test]
fn hashmap_introduced_into_fleet_rs_is_caught() {
    let path = "crates/serve/src/fleet.rs";
    let pristine = std::fs::read_to_string(repo_root().join(path)).expect("read fleet.rs");
    assert!(
        scan_file(path, &pristine).is_empty(),
        "the checked-in fleet.rs must scan clean"
    );

    let tainted = format!(
        "{pristine}\nfn injected() -> std::collections::HashMap<u64, u64> {{ Default::default() }}\n"
    );
    let lints = scan_file(path, &tainted);
    assert_eq!(lints.len(), 1, "got: {lints:?}");
    assert_eq!(lints[0].rule, RULE_HASHMAP);
    let rendered = lints[0].render();
    assert!(
        rendered.starts_with("crates/serve/src/fleet.rs:")
            && rendered.contains("deny[simlint::hashmap]"),
        "not rustc-style: {rendered}"
    );
}

/// The real `crates/serve/src/events.rs` class table matches the canonical
/// same-instant order today, and reshuffling a scheduling class — here the
/// KV-transfer landings — produces a `deny[simlint::event-order]`
/// diagnostic pointing at the drifted arm.
#[test]
fn reordered_kv_transfer_class_in_events_rs_is_caught() {
    let path = "crates/serve/src/events.rs";
    let pristine = std::fs::read_to_string(repo_root().join(path)).expect("read events.rs");
    assert!(
        scan_file(path, &pristine).is_empty(),
        "the checked-in events.rs must scan clean"
    );

    let tainted = pristine.replace(
        "FleetEvent::KvTransferComplete { .. } => 4,",
        "FleetEvent::KvTransferComplete { .. } => 6,",
    );
    assert_ne!(tainted, pristine, "the class arm to taint exists");
    let lints = scan_file(path, &tainted);
    assert_eq!(lints.len(), 1, "got: {lints:?}");
    assert_eq!(lints[0].rule, RULE_EVENT_ORDER);
    assert!(
        lints[0].render().contains("deny[simlint::event-order]"),
        "not rustc-style: {}",
        lints[0].render()
    );
}

#[test]
fn binary_exits_zero_on_the_clean_workspace() {
    let output = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .args(["crates", "examples"])
        .current_dir(repo_root())
        .output()
        .expect("run simlint");
    assert!(
        output.status.success(),
        "workspace scan failed:\n{}{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn binary_exits_nonzero_on_a_seeded_violation() {
    let root = std::env::temp_dir().join(format!("simlint-seeded-{}", std::process::id()));
    let dir = root.join("crates/serve/src");
    std::fs::create_dir_all(&dir).expect("create seeded tree");
    std::fs::write(
        dir.join("fleet.rs"),
        "fn injected() -> std::collections::HashMap<u64, u64> { Default::default() }\n",
    )
    .expect("write seeded violation");

    let output = Command::new(env!("CARGO_BIN_EXE_simlint"))
        .arg(root.join("crates").to_str().expect("utf-8 temp path"))
        .output()
        .expect("run simlint");
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&output.stderr).into_owned();
    std::fs::remove_dir_all(&root).ok();

    assert!(!output.status.success(), "seeded violation was not caught");
    // Diagnostics go to stderr (rustc-style); the summary line to stdout.
    assert!(
        stderr.contains("deny[simlint::hashmap]") && stderr.contains("fleet.rs"),
        "diagnostic missing from output:\nstdout: {stdout}\nstderr: {stderr}"
    );
}

proptest! {
    /// Scanning the same set of files in any order renders the same
    /// report: `Lint`'s derived ordering (file, line, rule, message) is a
    /// total order and the scanner sorts with it.
    #[test]
    fn report_is_identical_across_scan_orders(
        picks in proptest::collection::vec(0usize..4, 1..8),
        rotation in 0usize..8,
    ) {
        let snippets = [
            include_str!("fixtures/hashmap.rs"),
            include_str!("fixtures/wallclock.rs"),
            include_str!("fixtures/unseeded_rng.rs"),
            include_str!("fixtures/float_eq.rs"),
        ];
        let files: Vec<(String, &str)> = picks
            .iter()
            .enumerate()
            .map(|(i, &p)| (format!("crates/example/src/f{i}.rs"), snippets[p]))
            .collect();

        let scan_in_order = |order: &[usize]| -> String {
            let mut lints: Vec<Lint> = order
                .iter()
                .flat_map(|&i| scan_file(&files[i].0, files[i].1))
                .collect();
            lints.sort();
            lints
                .iter()
                .map(Lint::render)
                .collect::<Vec<_>>()
                .join("\n")
        };

        let natural: Vec<usize> = (0..files.len()).collect();
        let mut rotated = natural.clone();
        rotated.rotate_left(rotation % files.len().max(1));
        let mut reversed = natural.clone();
        reversed.reverse();

        let baseline = scan_in_order(&natural);
        prop_assert_eq!(&baseline, &scan_in_order(&rotated));
        prop_assert_eq!(&baseline, &scan_in_order(&reversed));
        prop_assert!(!baseline.is_empty(), "every snippet carries a violation");
    }
}

#[test]
fn scan_roots_errors_on_a_missing_root() {
    assert!(scan_roots(&["no/such/root"]).is_err());
}
