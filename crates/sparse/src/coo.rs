//! Coordinate-list (COO) unstructured sparse format.
//!
//! COO is the simplest unstructured representation: a list of
//! `(row, col, value)` triplets. The paper uses it (together with CSR) as the
//! canonical example of a format whose irregular non-zero pattern defeats
//! coalesced memory access on GPUs (§2.2, Figure 3).

use crate::dense::DenseMatrix;
use crate::error::{Result, SparseError};
use crate::traits::SparseFormat;
use serde::{Deserialize, Serialize};

/// A sparse matrix stored as unsorted `(row, col, value)` triplets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f32)>,
}

impl CooMatrix {
    /// Build a COO matrix from a dense one by recording all non-zero entries
    /// in row-major order.
    pub fn from_dense(dense: &DenseMatrix) -> Self {
        let mut entries = Vec::new();
        for r in 0..dense.rows() {
            for c in 0..dense.cols() {
                let v = dense.get(r, c);
                if v != 0.0 {
                    entries.push((r as u32, c as u32, v));
                }
            }
        }
        Self {
            rows: dense.rows(),
            cols: dense.cols(),
            entries,
        }
    }

    /// Build from explicit triplets, validating bounds.
    pub fn from_triplets(rows: usize, cols: usize, entries: Vec<(u32, u32, f32)>) -> Result<Self> {
        for &(r, c, _) in &entries {
            if r as usize >= rows {
                return Err(SparseError::IndexOutOfBounds {
                    index: r as usize,
                    bound: rows,
                });
            }
            if c as usize >= cols {
                return Err(SparseError::IndexOutOfBounds {
                    index: c as usize,
                    bound: cols,
                });
            }
        }
        Ok(Self {
            rows,
            cols,
            entries,
        })
    }

    /// Borrow the triplet list.
    pub fn entries(&self) -> &[(u32, u32, f32)] {
        &self.entries
    }

    /// Sparse-matrix x dense-matrix product: `C = self * B`.
    pub fn spmm(&self, b: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != b.rows() {
            return Err(SparseError::shape(format!(
                "coo spmm {}x{} * {}x{}",
                self.rows,
                self.cols,
                b.rows(),
                b.cols()
            )));
        }
        let mut out = DenseMatrix::zeros(self.rows, b.cols());
        for &(r, c, v) in &self.entries {
            let row_b = b.row(c as usize);
            let row_c = &mut out.as_mut_slice()[r as usize * b.cols()..(r as usize + 1) * b.cols()];
            for (o, x) in row_c.iter_mut().zip(row_b.iter()) {
                *o += v * x;
            }
        }
        Ok(out)
    }
}

impl SparseFormat for CooMatrix {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn nnz(&self) -> usize {
        self.entries.len()
    }

    fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for &(r, c, v) in &self.entries {
            out.set(r as usize, c as usize, v);
        }
        out
    }

    fn storage_bytes(&self, bf16: bool) -> usize {
        // Two u32 indices plus one value per entry.
        self.entries.len() * (8 + if bf16 { 2 } else { 4 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_from_dense() {
        let d = DenseMatrix::random_sparse(16, 12, 0.7, 1);
        let coo = CooMatrix::from_dense(&d);
        assert_eq!(coo.to_dense(), d);
        assert_eq!(coo.nnz(), d.nnz());
    }

    #[test]
    fn from_triplets_validates_bounds() {
        assert!(CooMatrix::from_triplets(2, 2, vec![(0, 0, 1.0)]).is_ok());
        assert!(CooMatrix::from_triplets(2, 2, vec![(2, 0, 1.0)]).is_err());
        assert!(CooMatrix::from_triplets(2, 2, vec![(0, 5, 1.0)]).is_err());
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let a = DenseMatrix::random_sparse(8, 10, 0.6, 2);
        let b = DenseMatrix::random(10, 6, 3);
        let coo = CooMatrix::from_dense(&a);
        let expected = a.matmul(&b).unwrap();
        let got = coo.spmm(&b).unwrap();
        assert!(got.allclose(&expected, 1e-5, 1e-5));
    }

    #[test]
    fn spmm_shape_mismatch() {
        let a = CooMatrix::from_dense(&DenseMatrix::zeros(4, 4));
        assert!(a.spmm(&DenseMatrix::zeros(5, 2)).is_err());
    }

    #[test]
    fn storage_accounts_for_indices() {
        let d = DenseMatrix::from_vec(1, 4, vec![1.0, 0.0, 2.0, 0.0]).unwrap();
        let coo = CooMatrix::from_dense(&d);
        assert_eq!(coo.storage_bytes(false), 2 * 12);
        assert_eq!(coo.storage_bytes(true), 2 * 10);
        assert!(coo.sparsity() > 0.49);
    }
}
