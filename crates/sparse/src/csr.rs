//! Compressed Sparse Row (CSR) unstructured format.
//!
//! CSR is the representation consumed by the Sputnik-like baseline kernel in
//! `samoyeds-kernels`. Row pointers + column indices + values, exactly like
//! cuSPARSE / Sputnik use on the GPU.

use crate::dense::DenseMatrix;
use crate::error::{Result, SparseError};
use crate::traits::SparseFormat;
use serde::{Deserialize, Serialize};

/// A sparse matrix in compressed sparse row form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Build a CSR matrix from a dense one.
    pub fn from_dense(dense: &DenseMatrix) -> Self {
        let mut row_ptr = Vec::with_capacity(dense.rows() + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..dense.rows() {
            for c in 0..dense.cols() {
                let v = dense.get(r, c);
                if v != 0.0 {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(values.len());
        }
        Self {
            rows: dense.rows(),
            cols: dense.cols(),
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Build from raw CSR arrays, validating their consistency.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self> {
        if row_ptr.len() != rows + 1 {
            return Err(SparseError::shape(format!(
                "row_ptr length {} != rows+1 ({})",
                row_ptr.len(),
                rows + 1
            )));
        }
        if col_idx.len() != values.len() {
            return Err(SparseError::shape(
                "col_idx and values lengths differ".to_string(),
            ));
        }
        if *row_ptr.last().unwrap_or(&0) != values.len() {
            return Err(SparseError::shape(
                "row_ptr last entry does not equal nnz".to_string(),
            ));
        }
        let mut prev = 0usize;
        for &p in &row_ptr {
            if p < prev {
                return Err(SparseError::shape("row_ptr is not monotonic".to_string()));
            }
            prev = p;
        }
        for &c in &col_idx {
            if c as usize >= cols {
                return Err(SparseError::IndexOutOfBounds {
                    index: c as usize,
                    bound: cols,
                });
            }
        }
        Ok(Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Row pointer array (length `rows + 1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index array (length `nnz`).
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Value array (length `nnz`).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Number of non-zeros in row `r`.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Maximum row length — a proxy for load imbalance in row-parallel SpMM
    /// kernels (the balance problem Sputnik addresses with row swizzling).
    pub fn max_row_nnz(&self) -> usize {
        (0..self.rows).map(|r| self.row_nnz(r)).max().unwrap_or(0)
    }

    /// Sparse x dense product `C = self * B`.
    pub fn spmm(&self, b: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != b.rows() {
            return Err(SparseError::shape(format!(
                "csr spmm {}x{} * {}x{}",
                self.rows,
                self.cols,
                b.rows(),
                b.cols()
            )));
        }
        let n = b.cols();
        let mut out = DenseMatrix::zeros(self.rows, n);
        for r in 0..self.rows {
            let start = self.row_ptr[r];
            let end = self.row_ptr[r + 1];
            let row_c = &mut out.as_mut_slice()[r * n..(r + 1) * n];
            for i in start..end {
                let v = self.values[i];
                let row_b = b.row(self.col_idx[i] as usize);
                for (o, x) in row_c.iter_mut().zip(row_b.iter()) {
                    *o += v * x;
                }
            }
        }
        Ok(out)
    }
}

impl SparseFormat for CsrMatrix {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn nnz(&self) -> usize {
        self.values.len()
    }

    fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                out.set(r, self.col_idx[i] as usize, self.values[i]);
            }
        }
        out
    }

    fn storage_bytes(&self, bf16: bool) -> usize {
        let value_bytes = if bf16 { 2 } else { 4 };
        self.row_ptr.len() * 4 + self.col_idx.len() * 4 + self.values.len() * value_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_from_dense() {
        let d = DenseMatrix::random_sparse(20, 15, 0.8, 11);
        let csr = CsrMatrix::from_dense(&d);
        assert_eq!(csr.to_dense(), d);
        assert_eq!(csr.nnz(), d.nnz());
    }

    #[test]
    fn from_raw_validation() {
        // Valid 2x3 matrix with 2 nnz.
        assert!(CsrMatrix::from_raw(2, 3, vec![0, 1, 2], vec![0, 2], vec![1.0, 2.0]).is_ok());
        // Bad row_ptr length.
        assert!(CsrMatrix::from_raw(2, 3, vec![0, 2], vec![0, 2], vec![1.0, 2.0]).is_err());
        // Non-monotonic row_ptr.
        assert!(CsrMatrix::from_raw(2, 3, vec![0, 2, 1], vec![0, 2], vec![1.0, 2.0]).is_err());
        // Column out of bounds.
        assert!(CsrMatrix::from_raw(2, 3, vec![0, 1, 2], vec![0, 3], vec![1.0, 2.0]).is_err());
        // nnz mismatch.
        assert!(CsrMatrix::from_raw(2, 3, vec![0, 1, 3], vec![0, 2], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn spmm_matches_dense() {
        let a = DenseMatrix::random_sparse(13, 9, 0.5, 5);
        let b = DenseMatrix::random(9, 7, 6);
        let csr = CsrMatrix::from_dense(&a);
        let expected = a.matmul(&b).unwrap();
        assert!(csr.spmm(&b).unwrap().allclose(&expected, 1e-5, 1e-5));
    }

    #[test]
    fn row_nnz_and_imbalance() {
        let d = DenseMatrix::from_vec(2, 4, vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 2.0]).unwrap();
        let csr = CsrMatrix::from_dense(&d);
        assert_eq!(csr.row_nnz(0), 3);
        assert_eq!(csr.row_nnz(1), 1);
        assert_eq!(csr.max_row_nnz(), 3);
    }

    #[test]
    fn spmm_shape_mismatch() {
        let csr = CsrMatrix::from_dense(&DenseMatrix::zeros(4, 4));
        assert!(csr.spmm(&DenseMatrix::zeros(3, 3)).is_err());
    }
}
