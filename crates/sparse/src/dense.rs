//! Row-major dense matrices, the reference GEMM and bf16 emulation helpers.
//!
//! Every sparse format in this crate converts to and from [`DenseMatrix`], and
//! every kernel in the workspace is validated against [`DenseMatrix::matmul`].

use crate::error::{Result, SparseError};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A row-major dense `rows x cols` matrix of `f32` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// Round an `f32` to the nearest bfloat16-representable value (round to
/// nearest even on the truncated mantissa), emulating the paper's bf16
/// operand type while keeping all arithmetic in `f32`.
pub fn quantize_bf16(x: f32) -> f32 {
    let bits = x.to_bits();
    // Round-to-nearest-even on bit 16.
    let rounding_bias = 0x7FFF + ((bits >> 16) & 1);
    let rounded = bits.wrapping_add(rounding_bias) & 0xFFFF_0000;
    f32::from_bits(rounded)
}

impl DenseMatrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix from a row-major data vector.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(SparseError::shape(format!(
                "data length {} does not match {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Create a matrix whose entries are produced by `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Deterministic pseudo-random matrix with entries uniform in `[-1, 1)`.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let data = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        Self { rows, cols, data }
    }

    /// Deterministic pseudo-random matrix where roughly `sparsity` of the
    /// entries (uniform in `[0,1]`) are forced to zero. Useful for building
    /// unstructured-sparse test inputs.
    pub fn random_sparse(rows: usize, cols: usize, sparsity: f64, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| {
                if rng.gen_bool(sparsity.clamp(0.0, 1.0)) {
                    0.0
                } else {
                    rng.gen_range(-1.0..1.0)
                }
            })
            .collect();
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the underlying row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Read element `(r, c)`.
    ///
    /// # Panics
    /// Panics if out of bounds; use it only with validated indices.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Write element `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Return the transposed matrix.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|v| **v != 0.0).count()
    }

    /// Fraction of zero entries in `[0, 1]`.
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / self.data.len() as f64
    }

    /// Reference GEMM: `C = self * other`, where `self` is `m x k` and
    /// `other` is `k x n`.
    pub fn matmul(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != other.rows {
            return Err(SparseError::shape(format!(
                "matmul {}x{} * {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for l in 0..self.cols {
                let a = self.get(i, l);
                if a == 0.0 {
                    continue;
                }
                let row_b = other.row(l);
                let row_c = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (cij, bj) in row_c.iter_mut().zip(row_b.iter()) {
                    *cij += a * bj;
                }
            }
        }
        Ok(out)
    }

    /// Element-wise addition. Errors on shape mismatch.
    pub fn add(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.shape() != other.shape() {
            return Err(SparseError::shape("add: shapes differ"));
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        DenseMatrix::from_vec(self.rows, self.cols, data)
    }

    /// Scale every entry by `s`.
    pub fn scale(&self, s: f32) -> DenseMatrix {
        let data = self.data.iter().map(|v| v * s).collect();
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Apply a function element-wise (used for activation functions).
    pub fn map(&self, f: impl Fn(f32) -> f32) -> DenseMatrix {
        let data = self.data.iter().map(|v| f(*v)).collect();
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Element-wise (Hadamard) product. Errors on shape mismatch.
    pub fn hadamard(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.shape() != other.shape() {
            return Err(SparseError::shape("hadamard: shapes differ"));
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .collect();
        DenseMatrix::from_vec(self.rows, self.cols, data)
    }

    /// Round every entry to its nearest bf16-representable value.
    pub fn to_bf16(&self) -> DenseMatrix {
        self.map(quantize_bf16)
    }

    /// Maximum absolute element-wise difference against `other`.
    ///
    /// Returns `f32::INFINITY` if the shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f32 {
        if self.shape() != other.shape() {
            return f32::INFINITY;
        }
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Check element-wise closeness with absolute tolerance `atol` and
    /// relative tolerance `rtol`.
    pub fn allclose(&self, other: &DenseMatrix, atol: f32, rtol: f32) -> bool {
        if self.shape() != other.shape() {
            return false;
        }
        self.data
            .iter()
            .zip(other.data.iter())
            .all(|(a, b)| (a - b).abs() <= atol + rtol * b.abs().max(a.abs()))
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Extract the sub-matrix formed by the given columns, in order.
    pub fn select_columns(&self, columns: &[usize]) -> Result<DenseMatrix> {
        for &c in columns {
            if c >= self.cols {
                return Err(SparseError::IndexOutOfBounds {
                    index: c,
                    bound: self.cols,
                });
            }
        }
        let mut out = DenseMatrix::zeros(self.rows, columns.len());
        for r in 0..self.rows {
            for (j, &c) in columns.iter().enumerate() {
                out.set(r, j, self.get(r, c));
            }
        }
        Ok(out)
    }

    /// Extract the sub-matrix formed by the given rows, in order.
    pub fn select_rows(&self, rows: &[usize]) -> Result<DenseMatrix> {
        for &r in rows {
            if r >= self.rows {
                return Err(SparseError::IndexOutOfBounds {
                    index: r,
                    bound: self.rows,
                });
            }
        }
        let mut out = DenseMatrix::zeros(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            out.as_mut_slice()[i * self.cols..(i + 1) * self.cols].copy_from_slice(self.row(r));
        }
        Ok(out)
    }

    /// Total storage in bytes for the dense representation (4 bytes/element;
    /// 2 bytes/element when treated as bf16).
    pub fn storage_bytes(&self, bf16: bool) -> usize {
        self.data.len() * if bf16 { 2 } else { 4 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = DenseMatrix::zeros(3, 5);
        assert_eq!(m.shape(), (3, 5));
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.sparsity(), 1.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = DenseMatrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(4, 2);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = DenseMatrix::random(7, 5, 42);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_swaps_indices() {
        let a = DenseMatrix::from_fn(3, 4, |r, c| (r * 10 + c) as f32);
        let t = a.transpose();
        assert_eq!(t.get(2, 1), a.get(1, 2));
        assert_eq!(t.shape(), (4, 3));
    }

    #[test]
    fn bf16_quantization_is_idempotent_and_close() {
        let x = 1.234_567_f32;
        let q = quantize_bf16(x);
        assert_eq!(quantize_bf16(q), q);
        assert!((x - q).abs() < 0.01);
        assert_eq!(quantize_bf16(0.0), 0.0);
        assert_eq!(quantize_bf16(1.0), 1.0);
        assert_eq!(quantize_bf16(-2.0), -2.0);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = DenseMatrix::random(4, 4, 7);
        let b = DenseMatrix::random(4, 4, 7);
        let c = DenseMatrix::random(4, 4, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_sparse_hits_requested_sparsity_roughly() {
        let m = DenseMatrix::random_sparse(64, 64, 0.75, 3);
        let s = m.sparsity();
        assert!((0.65..0.85).contains(&s), "sparsity {s}");
    }

    #[test]
    fn select_columns_picks_in_order() {
        let a = DenseMatrix::from_fn(2, 4, |r, c| (r * 4 + c) as f32);
        let s = a.select_columns(&[3, 1]).unwrap();
        assert_eq!(s.as_slice(), &[3.0, 1.0, 7.0, 5.0]);
        assert!(a.select_columns(&[4]).is_err());
    }

    #[test]
    fn select_rows_picks_in_order() {
        let a = DenseMatrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let s = a.select_rows(&[2, 0]).unwrap();
        assert_eq!(s.as_slice(), &[4.0, 5.0, 0.0, 1.0]);
        assert!(a.select_rows(&[3]).is_err());
    }

    #[test]
    fn hadamard_and_scale_and_add() {
        let a = DenseMatrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
        let b = DenseMatrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.hadamard(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn allclose_and_max_abs_diff() {
        let a = DenseMatrix::from_vec(1, 2, vec![1.0, 2.0]).unwrap();
        let b = DenseMatrix::from_vec(1, 2, vec![1.0 + 1e-6, 2.0]).unwrap();
        assert!(a.allclose(&b, 1e-5, 0.0));
        assert!(a.max_abs_diff(&b) < 1e-5);
        let c = DenseMatrix::zeros(2, 1);
        assert!(!a.allclose(&c, 1.0, 1.0));
        assert_eq!(a.max_abs_diff(&c), f32::INFINITY);
    }

    #[test]
    fn storage_bytes_accounts_for_precision() {
        let a = DenseMatrix::zeros(8, 8);
        assert_eq!(a.storage_bytes(false), 256);
        assert_eq!(a.storage_bytes(true), 128);
    }
}
