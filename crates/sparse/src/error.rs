//! Error type shared by all sparse-format constructors and converters.

use std::fmt;

/// Errors produced while constructing, encoding or operating on sparse
/// matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// Matrix dimensions do not satisfy a required divisibility or equality
    /// constraint (e.g. `k % 4 != 0` for a 2:4 encoding).
    ShapeMismatch {
        /// Human readable description of the violated constraint.
        context: String,
    },
    /// A sparsity configuration is internally inconsistent (e.g. `N > M`).
    InvalidConfig {
        /// Human readable description of the invalid configuration.
        context: String,
    },
    /// An index stored in a compressed representation is out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive bound it must stay below.
        bound: usize,
    },
    /// The data does not follow the structured pattern required by a format
    /// (e.g. more than 2 non-zeros inside a group of 4 for 2:4).
    PatternViolation {
        /// Human readable description of the violation.
        context: String,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::ShapeMismatch { context } => write!(f, "shape mismatch: {context}"),
            SparseError::InvalidConfig { context } => write!(f, "invalid config: {context}"),
            SparseError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (< {bound})")
            }
            SparseError::PatternViolation { context } => {
                write!(f, "structured pattern violation: {context}")
            }
        }
    }
}

impl std::error::Error for SparseError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SparseError>;

impl SparseError {
    /// Build a [`SparseError::ShapeMismatch`] from anything displayable.
    pub fn shape(context: impl Into<String>) -> Self {
        SparseError::ShapeMismatch {
            context: context.into(),
        }
    }

    /// Build a [`SparseError::InvalidConfig`] from anything displayable.
    pub fn config(context: impl Into<String>) -> Self {
        SparseError::InvalidConfig {
            context: context.into(),
        }
    }

    /// Build a [`SparseError::PatternViolation`] from anything displayable.
    pub fn pattern(context: impl Into<String>) -> Self {
        SparseError::PatternViolation {
            context: context.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = SparseError::shape("k=3 not divisible by 4");
        assert!(e.to_string().contains("k=3"));
        let e = SparseError::config("N=3 > M=2");
        assert!(e.to_string().contains("N=3"));
        let e = SparseError::IndexOutOfBounds { index: 9, bound: 4 };
        assert!(e.to_string().contains('9'));
        let e = SparseError::pattern("3 nonzeros in a 2:4 group");
        assert!(e.to_string().contains("2:4"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(SparseError::shape("x"), SparseError::shape("x"));
        assert_ne!(SparseError::shape("x"), SparseError::config("x"));
    }
}
