//! Sparse matrix formats for the Samoyeds reproduction.
//!
//! This crate implements every data representation the paper's evaluation
//! touches:
//!
//! * [`dense::DenseMatrix`] — the baseline row-major dense representation and
//!   the reference GEMM used as a correctness oracle everywhere else.
//! * [`coo::CooMatrix`] and [`csr::CsrMatrix`] — unstructured formats used by
//!   the Sputnik-like baseline kernel.
//! * [`nm::NmMatrix`] — element-wise N:M structured sparsity (2:4 being the
//!   hardware-supported instance), encoded as compressed values plus a 2-bit
//!   metadata matrix exactly as consumed by `mma.sp`.
//! * [`venom::VenomMatrix`] — the V:N:M format of the VENOM baseline
//!   (vector-wise column pruning combined with 2:4 inside the kept columns).
//! * [`samoyeds::SamoyedsWeight`] — the paper's dual-side weight format:
//!   blocks of `M` Sub-Rows of length `V`, of which `N` are retained, with 2:4
//!   pruning inside each retained Sub-Row; encoded into `{data, indices,
//!   metadata}`.
//! * [`sel::SelectionArray`] / [`sel::SelInput`] — the input-side vector-wise
//!   sparsity produced by MoE token routing (the `SEL` array of Algorithm 1).
//! * [`packing`] — the reorganised 2-bit metadata packing of Figure 10 and the
//!   shared-memory permutation used to avoid bank conflicts.
//! * [`prune`] — magnitude pruning of dense weights into each of the formats.
//!
//! All floating point payloads are `f32` but can be passed through
//! [`dense::quantize_bf16`] to emulate the bfloat16 operands the paper uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coo;
pub mod csr;
pub mod dense;
pub mod error;
pub mod nm;
pub mod packing;
pub mod prune;
pub mod samoyeds;
pub mod sel;
pub mod traits;
pub mod venom;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use error::{Result, SparseError};
pub use nm::NmMatrix;
pub use samoyeds::{SamoyedsConfig, SamoyedsWeight};
pub use sel::{SelInput, SelectionArray};
pub use traits::SparseFormat;
pub use venom::VenomMatrix;
