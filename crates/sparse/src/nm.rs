//! Element-wise N:M structured sparsity (the hardware-native case is 2:4).
//!
//! In an N:M-sparse matrix every contiguous group of `M` elements along a row
//! contains at most `N` non-zeros. The compressed encoding keeps, for every
//! group, exactly `N` values plus the 2-bit in-group position of each kept
//! value — this is precisely the `{data, metadata}` pair the Sparse Tensor
//! Core `mma.sp` instruction consumes (§2.3, Figure 4).

use crate::dense::DenseMatrix;
use crate::error::{Result, SparseError};
use crate::traits::SparseFormat;
use serde::{Deserialize, Serialize};

/// An N:M sparsity configuration (e.g. 2:4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NmConfig {
    /// Number of values kept per group.
    pub n: usize,
    /// Group size.
    pub m: usize,
}

impl NmConfig {
    /// The hardware-supported 2:4 configuration.
    pub const TWO_FOUR: NmConfig = NmConfig { n: 2, m: 4 };

    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.n == 0 || self.m == 0 || self.n > self.m {
            return Err(SparseError::config(format!(
                "invalid N:M = {}:{}",
                self.n, self.m
            )));
        }
        if self.m > 16 {
            return Err(SparseError::config(format!(
                "group size {} exceeds the 4-bit metadata index range used by SpTC encodings",
                self.m
            )));
        }
        Ok(())
    }

    /// Fraction of elements removed by this pattern.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.n as f64 / self.m as f64
    }
}

/// A matrix stored in compressed N:M form: per row, `cols * N / M` values and
/// the same number of in-group position indices ("metadata").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NmMatrix {
    rows: usize,
    cols: usize,
    config: NmConfig,
    /// Compressed non-zero values, row-major, `rows x (cols * n / m)`.
    values: Vec<f32>,
    /// Position of each kept value inside its group of `m`, `0..m`.
    /// Same shape as `values`. Stored as `u8`; the hardware packs these into
    /// 2-bit fields (see [`crate::packing`]).
    metadata: Vec<u8>,
}

impl NmMatrix {
    /// Prune a dense matrix to N:M sparsity by keeping the `N`
    /// largest-magnitude elements of every group of `M`, then encode it.
    pub fn prune_from_dense(dense: &DenseMatrix, config: NmConfig) -> Result<Self> {
        config.validate()?;
        if !dense.cols().is_multiple_of(config.m) {
            return Err(SparseError::shape(format!(
                "cols {} not divisible by group size {}",
                dense.cols(),
                config.m
            )));
        }
        let groups_per_row = dense.cols() / config.m;
        let kept_per_row = groups_per_row * config.n;
        let mut values = Vec::with_capacity(dense.rows() * kept_per_row);
        let mut metadata = Vec::with_capacity(dense.rows() * kept_per_row);
        for r in 0..dense.rows() {
            let row = dense.row(r);
            for g in 0..groups_per_row {
                let group = &row[g * config.m..(g + 1) * config.m];
                // Select the N largest-magnitude positions, keeping them in
                // ascending index order as the hardware metadata requires.
                let mut order: Vec<usize> = (0..config.m).collect();
                order.sort_by(|&a, &b| {
                    group[b]
                        .abs()
                        .partial_cmp(&group[a].abs())
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                let mut kept: Vec<usize> = order[..config.n].to_vec();
                kept.sort_unstable();
                for &idx in &kept {
                    values.push(group[idx]);
                    metadata.push(idx as u8);
                }
            }
        }
        Ok(Self {
            rows: dense.rows(),
            cols: dense.cols(),
            config,
            values,
            metadata,
        })
    }

    /// Encode a dense matrix that is *already* N:M sparse. Errors with
    /// [`SparseError::PatternViolation`] if any group holds more than `N`
    /// non-zeros.
    pub fn from_dense_strict(dense: &DenseMatrix, config: NmConfig) -> Result<Self> {
        config.validate()?;
        if !dense.cols().is_multiple_of(config.m) {
            return Err(SparseError::shape(format!(
                "cols {} not divisible by group size {}",
                dense.cols(),
                config.m
            )));
        }
        let groups_per_row = dense.cols() / config.m;
        let mut values = Vec::new();
        let mut metadata = Vec::new();
        for r in 0..dense.rows() {
            let row = dense.row(r);
            for g in 0..groups_per_row {
                let group = &row[g * config.m..(g + 1) * config.m];
                let nonzero: Vec<usize> = (0..config.m).filter(|&i| group[i] != 0.0).collect();
                if nonzero.len() > config.n {
                    return Err(SparseError::pattern(format!(
                        "row {r} group {g} has {} nonzeros, limit {}",
                        nonzero.len(),
                        config.n
                    )));
                }
                // Pad the kept set with zero positions so every group stores
                // exactly N entries (the hardware always stores N).
                let mut kept = nonzero;
                let mut cursor = 0usize;
                while kept.len() < config.n {
                    while kept.contains(&cursor) {
                        cursor += 1;
                    }
                    kept.push(cursor);
                    cursor += 1;
                }
                kept.sort_unstable();
                for &idx in &kept {
                    values.push(group[idx]);
                    metadata.push(idx as u8);
                }
            }
        }
        Ok(Self {
            rows: dense.rows(),
            cols: dense.cols(),
            config,
            values,
            metadata,
        })
    }

    /// The sparsity configuration of this matrix.
    pub fn config(&self) -> NmConfig {
        self.config
    }

    /// Compressed values, row-major, `rows x kept_cols()`.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Per-value in-group positions (same shape as [`Self::values`]).
    pub fn metadata(&self) -> &[u8] {
        &self.metadata
    }

    /// Number of stored values per row (`cols * n / m`).
    pub fn kept_cols(&self) -> usize {
        self.cols * self.config.n / self.config.m
    }

    /// The compressed values of row `r`.
    pub fn values_row(&self, r: usize) -> &[f32] {
        let k = self.kept_cols();
        &self.values[r * k..(r + 1) * k]
    }

    /// The metadata of row `r`.
    pub fn metadata_row(&self, r: usize) -> &[u8] {
        let k = self.kept_cols();
        &self.metadata[r * k..(r + 1) * k]
    }

    /// Sparse x dense product `C = self * B` where `self` is interpreted at
    /// its logical `rows x cols` shape.
    pub fn spmm(&self, b: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != b.rows() {
            return Err(SparseError::shape(format!(
                "nm spmm {}x{} * {}x{}",
                self.rows,
                self.cols,
                b.rows(),
                b.cols()
            )));
        }
        let n_out = b.cols();
        let kept = self.kept_cols();
        let groups_per_row = self.cols / self.config.m;
        let per_group = self.config.n;
        let mut out = DenseMatrix::zeros(self.rows, n_out);
        for r in 0..self.rows {
            let vals = self.values_row(r);
            let meta = self.metadata_row(r);
            let row_c = &mut out.as_mut_slice()[r * n_out..(r + 1) * n_out];
            debug_assert_eq!(vals.len(), kept);
            for g in 0..groups_per_row {
                for j in 0..per_group {
                    let v = vals[g * per_group + j];
                    if v == 0.0 {
                        continue;
                    }
                    let col = g * self.config.m + meta[g * per_group + j] as usize;
                    let row_b = b.row(col);
                    for (o, x) in row_c.iter_mut().zip(row_b.iter()) {
                        *o += v * x;
                    }
                }
            }
        }
        Ok(out)
    }
}

impl SparseFormat for NmMatrix {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn nnz(&self) -> usize {
        self.values.iter().filter(|v| **v != 0.0).count()
    }

    fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        let per_group = self.config.n;
        let groups_per_row = self.cols / self.config.m;
        for r in 0..self.rows {
            let vals = self.values_row(r);
            let meta = self.metadata_row(r);
            for g in 0..groups_per_row {
                for j in 0..per_group {
                    let col = g * self.config.m + meta[g * per_group + j] as usize;
                    out.set(r, col, vals[g * per_group + j]);
                }
            }
        }
        out
    }

    fn storage_bytes(&self, bf16: bool) -> usize {
        let value_bytes = if bf16 { 2 } else { 4 };
        // Metadata is 2 bits per stored value on hardware (4 values per byte).
        self.values.len() * value_bytes + self.metadata.len().div_ceil(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(NmConfig { n: 2, m: 4 }.validate().is_ok());
        assert!(NmConfig { n: 0, m: 4 }.validate().is_err());
        assert!(NmConfig { n: 5, m: 4 }.validate().is_err());
        assert!(NmConfig { n: 2, m: 32 }.validate().is_err());
        assert!((NmConfig::TWO_FOUR.sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn prune_keeps_largest_magnitude() {
        let d = DenseMatrix::from_vec(1, 4, vec![0.1, -5.0, 3.0, 0.2]).unwrap();
        let nm = NmMatrix::prune_from_dense(&d, NmConfig::TWO_FOUR).unwrap();
        let dense = nm.to_dense();
        assert_eq!(dense.as_slice(), &[0.0, -5.0, 3.0, 0.0]);
        assert_eq!(nm.metadata(), &[1, 2]);
    }

    #[test]
    fn prune_respects_pattern_on_random_data() {
        let d = DenseMatrix::random(16, 64, 9);
        let nm = NmMatrix::prune_from_dense(&d, NmConfig::TWO_FOUR).unwrap();
        let dense = nm.to_dense();
        // Every group of 4 has at most 2 nonzeros.
        for r in 0..dense.rows() {
            for g in 0..dense.cols() / 4 {
                let cnt = (0..4).filter(|&i| dense.get(r, g * 4 + i) != 0.0).count();
                assert!(cnt <= 2);
            }
        }
        assert!((dense.sparsity() - 0.5).abs() < 0.01);
    }

    #[test]
    fn strict_encoding_rejects_violations() {
        let ok = DenseMatrix::from_vec(1, 4, vec![1.0, 0.0, 2.0, 0.0]).unwrap();
        assert!(NmMatrix::from_dense_strict(&ok, NmConfig::TWO_FOUR).is_ok());
        let bad = DenseMatrix::from_vec(1, 4, vec![1.0, 3.0, 2.0, 0.0]).unwrap();
        assert!(NmMatrix::from_dense_strict(&bad, NmConfig::TWO_FOUR).is_err());
    }

    #[test]
    fn strict_encoding_roundtrips() {
        let d = DenseMatrix::from_vec(
            2,
            8,
            vec![
                1.0, 0.0, 2.0, 0.0, 0.0, 0.0, 3.0, 4.0, //
                0.0, 0.0, 0.0, 0.0, 5.0, 0.0, 0.0, 6.0,
            ],
        )
        .unwrap();
        let nm = NmMatrix::from_dense_strict(&d, NmConfig::TWO_FOUR).unwrap();
        assert_eq!(nm.to_dense(), d);
    }

    #[test]
    fn shape_must_divide_group() {
        let d = DenseMatrix::zeros(2, 6);
        assert!(NmMatrix::prune_from_dense(&d, NmConfig::TWO_FOUR).is_err());
    }

    #[test]
    fn spmm_matches_pruned_dense_reference() {
        let d = DenseMatrix::random(24, 32, 4);
        let nm = NmMatrix::prune_from_dense(&d, NmConfig::TWO_FOUR).unwrap();
        let pruned = nm.to_dense();
        let b = DenseMatrix::random(32, 16, 5);
        let expected = pruned.matmul(&b).unwrap();
        assert!(nm.spmm(&b).unwrap().allclose(&expected, 1e-4, 1e-4));
    }

    #[test]
    fn storage_is_roughly_half_plus_metadata() {
        let d = DenseMatrix::random(16, 64, 1);
        let nm = NmMatrix::prune_from_dense(&d, NmConfig::TWO_FOUR).unwrap();
        let dense_bytes = d.storage_bytes(true);
        let nm_bytes = nm.storage_bytes(true);
        // 2:4 keeps half the values (in bf16) plus 2-bit metadata per value.
        assert!(nm_bytes < dense_bytes * 3 / 4);
        assert!(nm_bytes > dense_bytes / 2);
    }

    #[test]
    fn other_nm_ratios_work() {
        let d = DenseMatrix::random(8, 16, 2);
        let cfg = NmConfig { n: 1, m: 4 };
        let nm = NmMatrix::prune_from_dense(&d, cfg).unwrap();
        assert!((nm.to_dense().sparsity() - 0.75).abs() < 0.01);
        let b = DenseMatrix::random(16, 8, 3);
        let expected = nm.to_dense().matmul(&b).unwrap();
        assert!(nm.spmm(&b).unwrap().allclose(&expected, 1e-4, 1e-4));
    }
}
