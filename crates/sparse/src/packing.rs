//! Metadata packing and reorganisation (§4.4, Figure 10).
//!
//! The 2-bit metadata entries consumed by `mma.sp` are incompatible with the
//! `ldmatrix` collective load, so the Samoyeds kernel packs them into 32-bit
//! register words and *reorganises* their storage order on device memory so
//! that each thread's load is a contiguous, 32-bit-aligned transaction.
//!
//! The reorganisation for a 16x16 2-bit metadata tile maps the element at
//! `[row, col]` to `[row % 8 * 2 + col / 8, col % 8 + row / 8 * 8]`, which is
//! what [`reorganize_metadata_tile`] implements. [`pack_2bit`] packs 16
//! two-bit values into one `u32` in little-endian nibble order, matching the
//! register view of the SpTC (Figure 10(a)).

use crate::error::{Result, SparseError};

/// Side length of the metadata tile handled by one `mma.sp.m16n8k32`
/// invocation (16 rows x 16 two-bit entries).
pub const META_TILE: usize = 16;

/// Pack up to 16 two-bit values (`0..4`) into a single `u32`, value `i`
/// occupying bits `2i..2i+2`.
pub fn pack_2bit(values: &[u8]) -> Result<u32> {
    if values.len() > 16 {
        return Err(SparseError::shape(format!(
            "cannot pack {} 2-bit values into a 32-bit word",
            values.len()
        )));
    }
    let mut out = 0u32;
    for (i, &v) in values.iter().enumerate() {
        if v > 3 {
            return Err(SparseError::pattern(format!(
                "metadata value {v} does not fit in 2 bits"
            )));
        }
        out |= (v as u32) << (2 * i);
    }
    Ok(out)
}

/// Unpack a `u32` into 16 two-bit values (inverse of [`pack_2bit`]).
pub fn unpack_2bit(word: u32) -> [u8; 16] {
    let mut out = [0u8; 16];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = ((word >> (2 * i)) & 0b11) as u8;
    }
    out
}

/// The Figure 10(b) storage mapping for one 16x16 2-bit metadata tile:
/// element `[row, col]` of the logical tile is stored at
/// `[row % 8 * 2 + col / 8, col % 8 + row / 8 * 8]` of the reorganised tile.
pub fn metadata_remap(row: usize, col: usize) -> (usize, usize) {
    (row % 8 * 2 + col / 8, col % 8 + row / 8 * 8)
}

/// Reorganise a logical 16x16 metadata tile (row-major, 256 entries) into the
/// device-memory order of Figure 10(b).
pub fn reorganize_metadata_tile(tile: &[u8]) -> Result<Vec<u8>> {
    if tile.len() != META_TILE * META_TILE {
        return Err(SparseError::shape(format!(
            "metadata tile must have {} entries, got {}",
            META_TILE * META_TILE,
            tile.len()
        )));
    }
    let mut out = vec![0u8; tile.len()];
    for row in 0..META_TILE {
        for col in 0..META_TILE {
            let (nr, nc) = metadata_remap(row, col);
            out[nr * META_TILE + nc] = tile[row * META_TILE + col];
        }
    }
    Ok(out)
}

/// Undo [`reorganize_metadata_tile`].
pub fn restore_metadata_tile(reorganized: &[u8]) -> Result<Vec<u8>> {
    if reorganized.len() != META_TILE * META_TILE {
        return Err(SparseError::shape(format!(
            "metadata tile must have {} entries, got {}",
            META_TILE * META_TILE,
            reorganized.len()
        )));
    }
    let mut out = vec![0u8; reorganized.len()];
    for row in 0..META_TILE {
        for col in 0..META_TILE {
            let (nr, nc) = metadata_remap(row, col);
            out[row * META_TILE + col] = reorganized[nr * META_TILE + nc];
        }
    }
    Ok(out)
}

/// Pack a reorganised 16x16 metadata tile into the sixteen 32-bit register
/// words the SpTC expects (one word per reorganised row of 16 2-bit entries).
pub fn pack_metadata_tile_to_registers(tile: &[u8]) -> Result<Vec<u32>> {
    let reorganized = reorganize_metadata_tile(tile)?;
    reorganized
        .chunks(META_TILE)
        .map(pack_2bit)
        .collect::<Result<Vec<u32>>>()
}

/// Number of 32-bit memory transactions needed to load a 16x16 metadata tile
/// when it is stored in the given order.
///
/// With the naive row-major layout each thread's 32-bit register gathers
/// 2-bit entries that live in several different 32-bit words, so the number
/// of transactions is larger; with the reorganised layout every register maps
/// to exactly one aligned word. This function is what the kernel cost model
/// calls to credit the packing optimisation.
pub fn metadata_transactions(reorganized: bool) -> usize {
    if reorganized {
        // 16 registers, one aligned 32-bit transaction each.
        16
    } else {
        // Each register's 16 entries straddle 4 separate words in the
        // row-major layout (8 entries per row-half, 2 rows apart).
        16 * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let vals: Vec<u8> = (0..16).map(|i| (i % 4) as u8).collect();
        let w = pack_2bit(&vals).unwrap();
        assert_eq!(unpack_2bit(w).to_vec(), vals);
    }

    #[test]
    fn pack_rejects_bad_input() {
        assert!(pack_2bit(&[4]).is_err());
        assert!(pack_2bit(&[0u8; 17]).is_err());
        assert!(pack_2bit(&[]).unwrap() == 0);
    }

    #[test]
    fn remap_is_a_bijection_on_the_tile() {
        let mut seen = vec![false; META_TILE * META_TILE];
        for row in 0..META_TILE {
            for col in 0..META_TILE {
                let (nr, nc) = metadata_remap(row, col);
                assert!(
                    nr < META_TILE && nc < META_TILE,
                    "({row},{col}) -> ({nr},{nc})"
                );
                let idx = nr * META_TILE + nc;
                assert!(!seen[idx], "collision at ({nr},{nc})");
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn remap_matches_paper_formula_examples() {
        // [0,0] -> [0,0]; [0,8] -> [1,0]; [8,0] -> [0,8]; [7,15] -> [15,7].
        assert_eq!(metadata_remap(0, 0), (0, 0));
        assert_eq!(metadata_remap(0, 8), (1, 0));
        assert_eq!(metadata_remap(8, 0), (0, 8));
        assert_eq!(metadata_remap(7, 15), (15, 7));
    }

    #[test]
    fn reorganize_restore_roundtrip() {
        let tile: Vec<u8> = (0..256u32).map(|i| ((i / 16 + i) % 4) as u8).collect();
        let reorganized = reorganize_metadata_tile(&tile).unwrap();
        assert_ne!(reorganized, tile);
        let restored = restore_metadata_tile(&reorganized).unwrap();
        assert_eq!(restored, tile);
    }

    #[test]
    fn reorganize_validates_size() {
        assert!(reorganize_metadata_tile(&[0u8; 255]).is_err());
        assert!(restore_metadata_tile(&[0u8; 100]).is_err());
    }

    #[test]
    fn register_packing_produces_16_words() {
        let tile: Vec<u8> = (0..256).map(|i| ((i / 7) % 4) as u8).collect();
        let regs = pack_metadata_tile_to_registers(&tile).unwrap();
        assert_eq!(regs.len(), 16);
        // All information must be preserved: unpacking and restoring yields
        // the original tile.
        let mut reorganized = Vec::with_capacity(256);
        for w in regs {
            reorganized.extend_from_slice(&unpack_2bit(w));
        }
        assert_eq!(restore_metadata_tile(&reorganized).unwrap(), tile);
    }

    #[test]
    fn reorganized_layout_uses_fewer_transactions() {
        assert!(metadata_transactions(true) < metadata_transactions(false));
        assert_eq!(metadata_transactions(true), 16);
    }
}
