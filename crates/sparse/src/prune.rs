//! Convenience pruning entry points: turn a dense weight matrix into any of
//! the sparse representations studied in the paper, at a requested target
//! sparsity where the format allows it.
//!
//! These are the *magnitude-based* pruners used by the performance
//! experiments; the higher-quality WoodFisher-style and SparseGPT-style
//! pruners used by the accuracy experiments (Tables 4 and 5) live in the
//! `samoyeds-pruning` crate because they need calibration data.

use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::error::{Result, SparseError};
use crate::nm::{NmConfig, NmMatrix};
use crate::samoyeds::{SamoyedsConfig, SamoyedsWeight};
use crate::venom::{VenomConfig, VenomMatrix};
use serde::{Deserialize, Serialize};

/// The sparse representation a weight matrix should be pruned into.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PruneFormat {
    /// Keep the matrix dense (identity "pruning"); baseline for accuracy.
    Dense,
    /// Unstructured magnitude pruning to a target sparsity, stored as CSR.
    Unstructured {
        /// Fraction of weights to remove, in `[0, 1)`.
        sparsity: f64,
    },
    /// Element-wise N:M structured sparsity.
    Nm(NmConfig),
    /// VENOM V:N:M structured sparsity.
    Venom(VenomConfig),
    /// Samoyeds (N,M,V) dual-side weight sparsity.
    Samoyeds(SamoyedsConfig),
}

impl PruneFormat {
    /// Human-readable label used in experiment tables.
    pub fn label(&self) -> String {
        match self {
            PruneFormat::Dense => "dense".to_string(),
            PruneFormat::Unstructured { sparsity } => {
                format!("unstructured-{:.0}%", sparsity * 100.0)
            }
            PruneFormat::Nm(c) => format!("{}:{}", c.n, c.m),
            PruneFormat::Venom(c) => format!("venom-{}:{}:{}", c.v, c.n, c.m),
            PruneFormat::Samoyeds(c) => format!("samoyeds-{}", c.label()),
        }
    }

    /// Nominal sparsity of the format (what fraction of weights is removed).
    pub fn nominal_sparsity(&self) -> f64 {
        match self {
            PruneFormat::Dense => 0.0,
            PruneFormat::Unstructured { sparsity } => *sparsity,
            PruneFormat::Nm(c) => c.sparsity(),
            PruneFormat::Venom(c) => c.sparsity(),
            PruneFormat::Samoyeds(c) => c.sparsity(),
        }
    }
}

/// A pruned weight matrix in whichever representation was requested.
#[derive(Debug, Clone, PartialEq)]
pub enum PrunedWeight {
    /// Dense (not pruned).
    Dense(DenseMatrix),
    /// Unstructured CSR.
    Unstructured(CsrMatrix),
    /// N:M compressed.
    Nm(NmMatrix),
    /// VENOM compressed.
    Venom(VenomMatrix),
    /// Samoyeds compressed.
    Samoyeds(SamoyedsWeight),
}

impl PrunedWeight {
    /// Reconstruct the dense matrix the pruned representation stands for.
    pub fn to_dense(&self) -> DenseMatrix {
        use crate::traits::SparseFormat;
        match self {
            PrunedWeight::Dense(d) => d.clone(),
            PrunedWeight::Unstructured(c) => c.to_dense(),
            PrunedWeight::Nm(m) => m.to_dense(),
            PrunedWeight::Venom(v) => v.to_dense(),
            PrunedWeight::Samoyeds(s) => s.to_dense(),
        }
    }

    /// Compressed storage in bytes.
    pub fn storage_bytes(&self, bf16: bool) -> usize {
        use crate::traits::SparseFormat;
        match self {
            PrunedWeight::Dense(d) => d.storage_bytes(bf16),
            PrunedWeight::Unstructured(c) => c.storage_bytes(bf16),
            PrunedWeight::Nm(m) => m.storage_bytes(bf16),
            PrunedWeight::Venom(v) => v.storage_bytes(bf16),
            PrunedWeight::Samoyeds(s) => s.storage_bytes(bf16),
        }
    }
}

/// Magnitude-prune `dense` into the requested format.
pub fn prune(dense: &DenseMatrix, format: PruneFormat) -> Result<PrunedWeight> {
    match format {
        PruneFormat::Dense => Ok(PrunedWeight::Dense(dense.clone())),
        PruneFormat::Unstructured { sparsity } => Ok(PrunedWeight::Unstructured(
            prune_unstructured(dense, sparsity)?,
        )),
        PruneFormat::Nm(cfg) => Ok(PrunedWeight::Nm(NmMatrix::prune_from_dense(dense, cfg)?)),
        PruneFormat::Venom(cfg) => Ok(PrunedWeight::Venom(VenomMatrix::prune_from_dense(
            dense, cfg,
        )?)),
        PruneFormat::Samoyeds(cfg) => Ok(PrunedWeight::Samoyeds(SamoyedsWeight::prune_from_dense(
            dense, cfg,
        )?)),
    }
}

/// Global magnitude pruning: zero out the smallest-magnitude `sparsity`
/// fraction of entries and return the CSR encoding of the survivor set.
pub fn prune_unstructured(dense: &DenseMatrix, sparsity: f64) -> Result<CsrMatrix> {
    if !(0.0..1.0).contains(&sparsity) {
        return Err(SparseError::config(format!(
            "unstructured sparsity {sparsity} must be in [0, 1)"
        )));
    }
    let mut magnitudes: Vec<f32> = dense.as_slice().iter().map(|v| v.abs()).collect();
    magnitudes.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let cutoff_index = ((magnitudes.len() as f64) * sparsity).floor() as usize;
    let threshold = if cutoff_index == 0 {
        -1.0 // keep everything
    } else {
        magnitudes[cutoff_index.min(magnitudes.len() - 1)]
    };
    let masked = DenseMatrix::from_fn(dense.rows(), dense.cols(), |r, c| {
        let v = dense.get(r, c);
        if v.abs() < threshold {
            0.0
        } else {
            v
        }
    });
    Ok(CsrMatrix::from_dense(&masked))
}

/// Apply the binary mask implied by pruning `reference` into `format` onto
/// another matrix of the same shape. Used by the accuracy harness to transfer
/// a mask computed on calibration statistics onto raw weights.
pub fn apply_mask_of(reference: &PrunedWeight, target: &DenseMatrix) -> Result<DenseMatrix> {
    let ref_dense = reference.to_dense();
    if ref_dense.shape() != target.shape() {
        return Err(SparseError::shape("mask/target shape mismatch"));
    }
    Ok(DenseMatrix::from_fn(
        target.rows(),
        target.cols(),
        |r, c| {
            if ref_dense.get(r, c) != 0.0 {
                target.get(r, c)
            } else {
                0.0
            }
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::SparseFormat;

    #[test]
    fn labels_and_nominal_sparsity() {
        assert_eq!(PruneFormat::Dense.label(), "dense");
        assert_eq!(
            PruneFormat::Unstructured { sparsity: 0.75 }.label(),
            "unstructured-75%"
        );
        assert_eq!(PruneFormat::Nm(NmConfig::TWO_FOUR).label(), "2:4");
        assert!(PruneFormat::Venom(VenomConfig::V64_2_8)
            .label()
            .starts_with("venom"));
        assert_eq!(
            PruneFormat::Samoyeds(SamoyedsConfig::DEFAULT).label(),
            "samoyeds-(1,2,32)"
        );
        assert!(
            (PruneFormat::Samoyeds(SamoyedsConfig::DEFAULT).nominal_sparsity() - 0.75).abs() < 1e-9
        );
        assert_eq!(PruneFormat::Dense.nominal_sparsity(), 0.0);
    }

    #[test]
    fn unstructured_prune_hits_target() {
        let d = DenseMatrix::random(64, 64, 5);
        let csr = prune_unstructured(&d, 0.75).unwrap();
        let s = csr.sparsity();
        assert!((s - 0.75).abs() < 0.02, "sparsity {s}");
        assert!(prune_unstructured(&d, 1.5).is_err());
    }

    #[test]
    fn prune_dispatches_to_every_format() {
        let d = DenseMatrix::random(64, 64, 6);
        for fmt in [
            PruneFormat::Dense,
            PruneFormat::Unstructured { sparsity: 0.5 },
            PruneFormat::Nm(NmConfig::TWO_FOUR),
            PruneFormat::Venom(VenomConfig { v: 8, n: 2, m: 8 }),
            PruneFormat::Samoyeds(SamoyedsConfig::DEFAULT),
        ] {
            let pruned = prune(&d, fmt).unwrap();
            let dense = pruned.to_dense();
            assert_eq!(dense.shape(), d.shape());
            let achieved = dense.sparsity();
            let nominal = fmt.nominal_sparsity();
            assert!(
                achieved + 0.05 >= nominal,
                "{}: achieved {achieved} < nominal {nominal}",
                fmt.label()
            );
            assert!(pruned.storage_bytes(true) > 0);
        }
    }

    #[test]
    fn pruned_values_are_subset_of_original() {
        let d = DenseMatrix::random(32, 64, 7);
        let pruned = prune(&d, PruneFormat::Samoyeds(SamoyedsConfig::DEFAULT)).unwrap();
        let dense = pruned.to_dense();
        for r in 0..d.rows() {
            for c in 0..d.cols() {
                let v = dense.get(r, c);
                assert!(v == 0.0 || v == d.get(r, c));
            }
        }
    }

    #[test]
    fn apply_mask_transfers_zero_pattern() {
        let d = DenseMatrix::random(16, 32, 8);
        let pruned = prune(&d, PruneFormat::Nm(NmConfig::TWO_FOUR)).unwrap();
        let other = DenseMatrix::random(16, 32, 9);
        let masked = apply_mask_of(&pruned, &other).unwrap();
        let ref_dense = pruned.to_dense();
        for r in 0..16 {
            for c in 0..32 {
                if ref_dense.get(r, c) == 0.0 {
                    assert_eq!(masked.get(r, c), 0.0);
                } else {
                    assert_eq!(masked.get(r, c), other.get(r, c));
                }
            }
        }
        assert!(apply_mask_of(&pruned, &DenseMatrix::zeros(4, 4)).is_err());
    }
}
