//! The Samoyeds dual-side sparse **weight** format (§4.1, Figure 7, left).
//!
//! The weight matrix (`m x k`) is segmented into structured sparse blocks of
//! `M` Sub-Rows by `V` columns. Within every block only `N` Sub-Rows are
//! retained (vector-wise sparsity); the surviving Sub-Rows are further pruned
//! to the hardware 2:4 pattern (element-wise sparsity). The total sparsity is
//! therefore `1 - (N/M) * 0.5`; the (1,2,V) configurations used throughout the
//! paper give 75%.
//!
//! The encoding has three components:
//!
//! * **data** — compressed non-zero values, shape `(m*N/M) x (k/2)`;
//! * **indices** — for every compressed row and every column block, the
//!   position (0..M) of the retained Sub-Row inside its block, shape
//!   `(m*N/M) x (k/V)`;
//! * **metadata** — the 2-bit in-group positions required by `mma.sp`, shape
//!   `(m*N/M) x (k/2)`.
//!
//! A single *compressed* row therefore stitches together Sub-Rows that may
//! originate from *different* original rows in different column blocks — this
//! is exactly the property that forces the data-stationary register shuffle of
//! §4.3 (Figure 9) in the kernel.

use crate::dense::DenseMatrix;
use crate::error::{Result, SparseError};
use crate::traits::SparseFormat;
use serde::{Deserialize, Serialize};

/// The (N, M, V) sparsity configuration of the Samoyeds weight format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamoyedsConfig {
    /// Sub-Rows retained per block.
    pub n: usize,
    /// Sub-Rows per block (block height).
    pub m: usize,
    /// Sub-Row length (block width), must be a multiple of 4.
    pub v: usize,
}

impl SamoyedsConfig {
    /// The default configuration used in most of the paper's experiments.
    pub const DEFAULT: SamoyedsConfig = SamoyedsConfig { n: 1, m: 2, v: 32 };

    /// The (1,2,16) configuration from Table 4.
    pub const N1_M2_V16: SamoyedsConfig = SamoyedsConfig { n: 1, m: 2, v: 16 };
    /// The (1,2,32) configuration from Table 4.
    pub const N1_M2_V32: SamoyedsConfig = SamoyedsConfig { n: 1, m: 2, v: 32 };
    /// The (4,8,32) configuration from Table 4.
    pub const N4_M8_V32: SamoyedsConfig = SamoyedsConfig { n: 4, m: 8, v: 32 };
    /// The (8,16,32) configuration from Table 4.
    pub const N8_M16_V32: SamoyedsConfig = SamoyedsConfig { n: 8, m: 16, v: 32 };

    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.n == 0 || self.m == 0 || self.v == 0 || self.n > self.m {
            return Err(SparseError::config(format!(
                "invalid (N,M,V) = ({},{},{})",
                self.n, self.m, self.v
            )));
        }
        if !self.v.is_multiple_of(4) {
            return Err(SparseError::config(format!(
                "Sub-Row length V={} must contain whole 2:4 SpTC units (multiple of 4)",
                self.v
            )));
        }
        Ok(())
    }

    /// Total sparsity implied by the pattern (vector-wise + 2:4).
    pub fn sparsity(&self) -> f64 {
        1.0 - (self.n as f64 / self.m as f64) * 0.5
    }

    /// Short display string, e.g. `(1,2,32)`.
    pub fn label(&self) -> String {
        format!("({},{},{})", self.n, self.m, self.v)
    }
}

/// A weight matrix encoded in the Samoyeds dual-side format (weight side).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamoyedsWeight {
    rows: usize,
    cols: usize,
    config: SamoyedsConfig,
    /// Compressed values, `(rows*N/M) x (cols/2)` row-major.
    data: Vec<f32>,
    /// Retained Sub-Row positions, `(rows*N/M) x (cols/V)` row-major,
    /// each entry in `0..M`.
    indices: Vec<u8>,
    /// 2-bit in-group positions, `(rows*N/M) x (cols/2)` row-major,
    /// each entry in `0..4`.
    metadata: Vec<u8>,
}

impl SamoyedsWeight {
    /// Prune a dense weight matrix into the Samoyeds format.
    ///
    /// Sub-Row selection uses the L2 norm of each Sub-Row inside its block;
    /// element selection inside a Sub-Row uses magnitude (largest 2 of every
    /// 4). This mirrors the magnitude-based offline pruning flow of §4.5 and
    /// the accuracy experiments of §6.5.
    pub fn prune_from_dense(dense: &DenseMatrix, config: SamoyedsConfig) -> Result<Self> {
        config.validate()?;
        let (rows, cols) = dense.shape();
        if rows % config.m != 0 {
            return Err(SparseError::shape(format!(
                "rows {rows} not divisible by block height M={}",
                config.m
            )));
        }
        if cols % config.v != 0 {
            return Err(SparseError::shape(format!(
                "cols {cols} not divisible by Sub-Row length V={}",
                config.v
            )));
        }

        let row_blocks = rows / config.m;
        let col_blocks = cols / config.v;
        let comp_rows = row_blocks * config.n;
        let comp_cols = cols / 2;
        let mut data = vec![0.0f32; comp_rows * comp_cols];
        let mut indices = vec![0u8; comp_rows * col_blocks];
        let mut metadata = vec![0u8; comp_rows * comp_cols];

        for rb in 0..row_blocks {
            for cb in 0..col_blocks {
                // Score the M Sub-Rows of this block by L2 norm.
                let mut scored: Vec<(usize, f32)> = (0..config.m)
                    .map(|i| {
                        let r = rb * config.m + i;
                        let norm: f32 = (0..config.v)
                            .map(|j| {
                                let v = dense.get(r, cb * config.v + j);
                                v * v
                            })
                            .sum();
                        (i, norm)
                    })
                    .collect();
                scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                let mut kept: Vec<usize> = scored[..config.n].iter().map(|x| x.0).collect();
                kept.sort_unstable();

                for (slot, &sub_row) in kept.iter().enumerate() {
                    let comp_r = rb * config.n + slot;
                    indices[comp_r * col_blocks + cb] = sub_row as u8;
                    let orig_r = rb * config.m + sub_row;
                    // 2:4 prune the Sub-Row and write values + metadata.
                    for u in 0..config.v / 4 {
                        let base_col = cb * config.v + u * 4;
                        let group: Vec<f32> =
                            (0..4).map(|j| dense.get(orig_r, base_col + j)).collect();
                        let mut order: Vec<usize> = (0..4).collect();
                        order.sort_by(|&a, &b| {
                            group[b]
                                .abs()
                                .partial_cmp(&group[a].abs())
                                .unwrap_or(std::cmp::Ordering::Equal)
                        });
                        let mut kept2 = [order[0], order[1]];
                        kept2.sort_unstable();
                        let comp_base = comp_r * comp_cols + (cb * config.v + u * 4) / 2;
                        for (slot2, &idx) in kept2.iter().enumerate() {
                            data[comp_base + slot2] = group[idx];
                            metadata[comp_base + slot2] = idx as u8;
                        }
                    }
                }
            }
        }

        Ok(Self {
            rows,
            cols,
            config,
            data,
            indices,
            metadata,
        })
    }

    /// The sparsity configuration.
    pub fn config(&self) -> SamoyedsConfig {
        self.config
    }

    /// Number of compressed rows (`rows * N / M`).
    pub fn compressed_rows(&self) -> usize {
        self.rows / self.config.m * self.config.n
    }

    /// Number of compressed columns (`cols / 2`).
    pub fn compressed_cols(&self) -> usize {
        self.cols / 2
    }

    /// Number of column blocks (`cols / V`).
    pub fn col_blocks(&self) -> usize {
        self.cols / self.config.v
    }

    /// Borrow the compressed value matrix (row-major,
    /// `compressed_rows x compressed_cols`).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Borrow the indices matrix (row-major,
    /// `compressed_rows x col_blocks`).
    pub fn indices(&self) -> &[u8] {
        &self.indices
    }

    /// Borrow the metadata matrix (row-major, same shape as `data`).
    pub fn metadata(&self) -> &[u8] {
        &self.metadata
    }

    /// Compressed values of compressed row `r`.
    pub fn data_row(&self, r: usize) -> &[f32] {
        let k = self.compressed_cols();
        &self.data[r * k..(r + 1) * k]
    }

    /// Metadata of compressed row `r`.
    pub fn metadata_row(&self, r: usize) -> &[u8] {
        let k = self.compressed_cols();
        &self.metadata[r * k..(r + 1) * k]
    }

    /// The retained Sub-Row position for compressed row `r`, column block
    /// `cb`.
    pub fn sub_row_index(&self, r: usize, cb: usize) -> usize {
        self.indices[r * self.col_blocks() + cb] as usize
    }

    /// Map a compressed row + column block back to the original row index.
    pub fn original_row(&self, comp_row: usize, col_block: usize) -> usize {
        let rb = comp_row / self.config.n;
        rb * self.config.m + self.sub_row_index(comp_row, col_block)
    }

    /// Reference sparse-weight x dense-input product `C = W * B` at the
    /// logical `rows x cols` shape of the weight.
    pub fn spmm(&self, b: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != b.rows() {
            return Err(SparseError::shape(format!(
                "samoyeds spmm {}x{} * {}x{}",
                self.rows,
                self.cols,
                b.rows(),
                b.cols()
            )));
        }
        let n_out = b.cols();
        let mut out = DenseMatrix::zeros(self.rows, n_out);
        let comp_cols = self.compressed_cols();
        for comp_r in 0..self.compressed_rows() {
            let vals = self.data_row(comp_r);
            let meta = self.metadata_row(comp_r);
            for cb in 0..self.col_blocks() {
                let orig_r = self.original_row(comp_r, cb);
                let row_c = &mut out.as_mut_slice()[orig_r * n_out..(orig_r + 1) * n_out];
                // Each column block contributes V/2 compressed entries.
                let comp_start = cb * self.config.v / 2;
                for t in 0..self.config.v / 2 {
                    let ci = comp_start + t;
                    debug_assert!(ci < comp_cols);
                    let v = vals[ci];
                    if v == 0.0 {
                        continue;
                    }
                    let group = (cb * self.config.v + t / 2 * 4) / 4;
                    let col = group * 4 + meta[ci] as usize;
                    let row_b = b.row(col);
                    for (o, x) in row_c.iter_mut().zip(row_b.iter()) {
                        *o += v * x;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Reference dual-side sparse product: `C = W * B[:, sel]` where only the
    /// columns of `B` listed in `sel` participate (the MoE token-routing
    /// sparsity). The output has `sel.len()` columns (compressed layout of
    /// §4.5).
    pub fn spmm_selected(&self, b: &DenseMatrix, sel: &[usize]) -> Result<DenseMatrix> {
        let gathered = b.select_columns(sel)?;
        self.spmm(&gathered)
    }
}

impl SparseFormat for SamoyedsWeight {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn nnz(&self) -> usize {
        self.data.iter().filter(|v| **v != 0.0).count()
    }

    fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for comp_r in 0..self.compressed_rows() {
            let vals = self.data_row(comp_r);
            let meta = self.metadata_row(comp_r);
            for cb in 0..self.col_blocks() {
                let orig_r = self.original_row(comp_r, cb);
                let comp_start = cb * self.config.v / 2;
                for t in 0..self.config.v / 2 {
                    let ci = comp_start + t;
                    let group = (cb * self.config.v + t / 2 * 4) / 4;
                    let col = group * 4 + meta[ci] as usize;
                    out.set(orig_r, col, vals[ci]);
                }
            }
        }
        out
    }

    fn storage_bytes(&self, bf16: bool) -> usize {
        let value_bytes = if bf16 { 2 } else { 4 };
        // data + 2-bit metadata (4 per byte) + indices (1 byte each, the
        // hardware packs ceil(log2 M) bits but byte granularity is what the
        // kernel actually loads).
        self.data.len() * value_bytes + self.metadata.len().div_ceil(4) + self.indices.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_and_sparsity() {
        assert!(SamoyedsConfig::DEFAULT.validate().is_ok());
        assert!(SamoyedsConfig { n: 0, m: 2, v: 32 }.validate().is_err());
        assert!(SamoyedsConfig { n: 3, m: 2, v: 32 }.validate().is_err());
        assert!(SamoyedsConfig { n: 1, m: 2, v: 30 }.validate().is_err());
        assert!((SamoyedsConfig::DEFAULT.sparsity() - 0.75).abs() < 1e-12);
        assert!((SamoyedsConfig::N8_M16_V32.sparsity() - 0.75).abs() < 1e-12);
        assert_eq!(SamoyedsConfig::N1_M2_V16.label(), "(1,2,16)");
    }

    #[test]
    fn prune_shape_requirements() {
        let cfg = SamoyedsConfig::DEFAULT;
        assert!(SamoyedsWeight::prune_from_dense(&DenseMatrix::zeros(3, 64), cfg).is_err());
        assert!(SamoyedsWeight::prune_from_dense(&DenseMatrix::zeros(4, 63), cfg).is_err());
        assert!(SamoyedsWeight::prune_from_dense(&DenseMatrix::zeros(4, 64), cfg).is_ok());
    }

    #[test]
    fn encoded_shapes_match_paper_description() {
        let d = DenseMatrix::random(64, 128, 3);
        let w = SamoyedsWeight::prune_from_dense(&d, SamoyedsConfig::DEFAULT).unwrap();
        assert_eq!(w.compressed_rows(), 32); // m / M * N = 64/2
        assert_eq!(w.compressed_cols(), 64); // k / 2
        assert_eq!(w.col_blocks(), 4); // k / V = 128/32
        assert_eq!(w.data().len(), 32 * 64);
        assert_eq!(w.indices().len(), 32 * 4);
        assert_eq!(w.metadata().len(), 32 * 64);
    }

    #[test]
    fn pruned_matrix_respects_block_and_element_patterns() {
        let cfg = SamoyedsConfig { n: 1, m: 2, v: 16 };
        let d = DenseMatrix::random(32, 64, 7);
        let w = SamoyedsWeight::prune_from_dense(&d, cfg).unwrap();
        let dense = w.to_dense();
        // Per block: only 1 of 2 Sub-Rows carries nonzeros.
        for rb in 0..16 {
            for cb in 0..4 {
                let mut live = 0;
                for i in 0..2 {
                    let any = (0..16).any(|j| dense.get(rb * 2 + i, cb * 16 + j) != 0.0);
                    if any {
                        live += 1;
                    }
                }
                assert!(live <= 1, "block ({rb},{cb}) has {live} live sub-rows");
            }
        }
        // Per kept Sub-Row: 2:4.
        for r in 0..dense.rows() {
            for g in 0..dense.cols() / 4 {
                let cnt = (0..4).filter(|&j| dense.get(r, g * 4 + j) != 0.0).count();
                assert!(cnt <= 2);
            }
        }
        // Total sparsity close to 75%.
        assert!((dense.sparsity() - 0.75).abs() < 0.02);
    }

    #[test]
    fn keeps_dominant_sub_rows() {
        let cfg = SamoyedsConfig { n: 1, m: 2, v: 16 };
        // Make every odd row dominant.
        let d = DenseMatrix::from_fn(8, 32, |r, c| {
            if r % 2 == 1 {
                1.0 + (c % 3) as f32
            } else {
                0.001
            }
        });
        let w = SamoyedsWeight::prune_from_dense(&d, cfg).unwrap();
        for comp_r in 0..w.compressed_rows() {
            for cb in 0..w.col_blocks() {
                assert_eq!(w.sub_row_index(comp_r, cb), 1);
            }
        }
    }

    #[test]
    fn spmm_matches_dense_reference_of_pruned_matrix() {
        for cfg in [
            SamoyedsConfig::N1_M2_V16,
            SamoyedsConfig::N1_M2_V32,
            SamoyedsConfig::N4_M8_V32,
        ] {
            let d = DenseMatrix::random(64, 128, 13);
            let w = SamoyedsWeight::prune_from_dense(&d, cfg).unwrap();
            let b = DenseMatrix::random(128, 48, 14);
            let expected = w.to_dense().matmul(&b).unwrap();
            let got = w.spmm(&b).unwrap();
            assert!(
                got.allclose(&expected, 1e-3, 1e-3),
                "config {:?} max diff {}",
                cfg,
                got.max_abs_diff(&expected)
            );
        }
    }

    #[test]
    fn spmm_selected_matches_column_gather() {
        let d = DenseMatrix::random(32, 64, 21);
        let w = SamoyedsWeight::prune_from_dense(&d, SamoyedsConfig::DEFAULT).unwrap();
        let b = DenseMatrix::random(64, 40, 22);
        let sel = vec![0, 3, 5, 8, 13, 21, 34, 39];
        let expected = w
            .to_dense()
            .matmul(&b.select_columns(&sel).unwrap())
            .unwrap();
        let got = w.spmm_selected(&b, &sel).unwrap();
        assert!(got.allclose(&expected, 1e-3, 1e-3));
        assert_eq!(got.cols(), sel.len());
    }

    #[test]
    fn storage_is_about_a_quarter_of_dense() {
        let d = DenseMatrix::random(128, 256, 2);
        let w = SamoyedsWeight::prune_from_dense(&d, SamoyedsConfig::DEFAULT).unwrap();
        let ratio = w.compression_ratio(true);
        // 75% sparsity keeps 1/4 of the values (+ metadata/index overhead),
        // so the compression ratio should land between 2.5x and 4x.
        assert!(ratio > 2.5 && ratio < 4.0, "ratio {ratio}");
    }

    #[test]
    fn original_row_mapping_is_consistent_with_to_dense() {
        let d = DenseMatrix::random(16, 64, 77);
        let w = SamoyedsWeight::prune_from_dense(&d, SamoyedsConfig::N1_M2_V16).unwrap();
        let dense = w.to_dense();
        for comp_r in 0..w.compressed_rows() {
            for cb in 0..w.col_blocks() {
                let orig = w.original_row(comp_r, cb);
                // The kept sub-row must contain all nonzeros of the block.
                let rb = comp_r / w.config().n;
                for i in 0..w.config().m {
                    let r = rb * w.config().m + i;
                    if r == orig {
                        continue;
                    }
                    for j in 0..w.config().v {
                        assert_eq!(dense.get(r, cb * w.config().v + j), 0.0);
                    }
                }
            }
        }
    }
}
