//! The input-side vector-wise sparsity of the Samoyeds format (§4.1,
//! Figure 7, right): a selection array (`SEL`) that records which columns of
//! the full input matrix participate in an expert's computation.
//!
//! In the MoE layer the "columns" are tokens: the router assigns each token
//! to a small number of experts, so from the point of view of one expert the
//! activation matrix is column-sparse with a dynamic, per-batch pattern. The
//! `SEL` array is exactly the routing result and makes the computation
//! mathematically identical to gathering the routed tokens — without ever
//! materialising the gathered copy (the redundancy of §3.1).

use crate::dense::DenseMatrix;
use crate::error::{Result, SparseError};
use serde::{Deserialize, Serialize};

/// A selection of column indices out of a logical total, in ascending order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectionArray {
    total: usize,
    selected: Vec<u32>,
}

impl SelectionArray {
    /// Build a selection array. Indices must be strictly increasing and less
    /// than `total`.
    pub fn new(total: usize, selected: Vec<u32>) -> Result<Self> {
        let mut prev: Option<u32> = None;
        for &s in &selected {
            if s as usize >= total {
                return Err(SparseError::IndexOutOfBounds {
                    index: s as usize,
                    bound: total,
                });
            }
            if let Some(p) = prev {
                if s <= p {
                    return Err(SparseError::config(
                        "selection indices must be strictly increasing".to_string(),
                    ));
                }
            }
            prev = Some(s);
        }
        Ok(Self { total, selected })
    }

    /// Select every column (dense input).
    pub fn all(total: usize) -> Self {
        Self {
            total,
            selected: (0..total as u32).collect(),
        }
    }

    /// Build from a boolean mask.
    pub fn from_mask(mask: &[bool]) -> Self {
        let selected = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &keep)| keep.then_some(i as u32))
            .collect();
        Self {
            total: mask.len(),
            selected,
        }
    }

    /// Logical number of columns the selection refers to.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of selected columns (`len_d` in Figure 8).
    pub fn len(&self) -> usize {
        self.selected.len()
    }

    /// True when no column is selected.
    pub fn is_empty(&self) -> bool {
        self.selected.is_empty()
    }

    /// Borrow the selected indices.
    pub fn indices(&self) -> &[u32] {
        &self.selected
    }

    /// Selected indices as `usize` (convenience for gather operations).
    pub fn indices_usize(&self) -> Vec<usize> {
        self.selected.iter().map(|&x| x as usize).collect()
    }

    /// Fraction of columns *not* selected.
    pub fn sparsity(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        1.0 - self.selected.len() as f64 / self.total as f64
    }

    /// Storage bytes of the SEL array itself (4 bytes per entry).
    pub fn storage_bytes(&self) -> usize {
        self.selected.len() * 4
    }
}

/// An input matrix paired with a selection of its columns — the input operand
/// of the Samoyeds sparse-sparse kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelInput {
    matrix: DenseMatrix,
    sel: SelectionArray,
}

impl SelInput {
    /// Pair an input matrix (`k x n_total`, tokens as columns) with a
    /// selection over its columns.
    pub fn new(matrix: DenseMatrix, sel: SelectionArray) -> Result<Self> {
        if sel.total() != matrix.cols() {
            return Err(SparseError::shape(format!(
                "selection over {} columns but matrix has {}",
                sel.total(),
                matrix.cols()
            )));
        }
        Ok(Self { matrix, sel })
    }

    /// A dense input where every column is selected.
    pub fn dense(matrix: DenseMatrix) -> Self {
        let sel = SelectionArray::all(matrix.cols());
        Self { matrix, sel }
    }

    /// The full (unselected) matrix.
    pub fn matrix(&self) -> &DenseMatrix {
        &self.matrix
    }

    /// The selection array.
    pub fn sel(&self) -> &SelectionArray {
        &self.sel
    }

    /// Number of rows of the input (the reduction dimension `k`).
    pub fn rows(&self) -> usize {
        self.matrix.rows()
    }

    /// Number of selected columns (the effective `n` of the product).
    pub fn selected_cols(&self) -> usize {
        self.sel.len()
    }

    /// Materialise the gathered `k x len_d` matrix (what a permutation-based
    /// MoE implementation would copy into a fresh buffer).
    pub fn gather(&self) -> DenseMatrix {
        self.matrix
            .select_columns(&self.sel.indices_usize())
            .expect("selection validated at construction")
    }

    /// Bytes that actually need to move for this operand when the kernel
    /// consumes the SEL array directly (selected columns only + SEL array).
    pub fn effective_bytes(&self, bf16: bool) -> usize {
        let value_bytes = if bf16 { 2 } else { 4 };
        self.rows() * self.selected_cols() * value_bytes + self.sel.storage_bytes()
    }

    /// Bytes a dense (non-SEL-aware) kernel would move for the same operand.
    pub fn dense_bytes(&self, bf16: bool) -> usize {
        self.matrix.storage_bytes(bf16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_validation() {
        assert!(SelectionArray::new(8, vec![0, 3, 5]).is_ok());
        assert!(SelectionArray::new(8, vec![0, 3, 3]).is_err());
        assert!(SelectionArray::new(8, vec![3, 1]).is_err());
        assert!(SelectionArray::new(8, vec![8]).is_err());
    }

    #[test]
    fn all_and_mask_constructors() {
        let all = SelectionArray::all(4);
        assert_eq!(all.indices(), &[0, 1, 2, 3]);
        assert_eq!(all.sparsity(), 0.0);
        let m = SelectionArray::from_mask(&[true, false, true, false]);
        assert_eq!(m.indices(), &[0, 2]);
        assert!((m.sparsity() - 0.5).abs() < 1e-12);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
        assert!(SelectionArray::from_mask(&[false, false]).is_empty());
    }

    #[test]
    fn sel_input_requires_matching_width() {
        let m = DenseMatrix::zeros(4, 6);
        let sel = SelectionArray::new(5, vec![0]).unwrap();
        assert!(SelInput::new(m.clone(), sel).is_err());
        let sel = SelectionArray::new(6, vec![1, 4]).unwrap();
        assert!(SelInput::new(m, sel).is_ok());
    }

    #[test]
    fn gather_extracts_selected_columns() {
        let m = DenseMatrix::from_fn(2, 4, |r, c| (r * 4 + c) as f32);
        let sel = SelectionArray::new(4, vec![1, 3]).unwrap();
        let input = SelInput::new(m, sel).unwrap();
        let g = input.gather();
        assert_eq!(g.shape(), (2, 2));
        assert_eq!(g.as_slice(), &[1.0, 3.0, 5.0, 7.0]);
    }

    #[test]
    fn effective_bytes_smaller_than_dense_when_sparse() {
        let m = DenseMatrix::random(64, 128, 1);
        let sel = SelectionArray::new(128, (0..32).map(|i| i * 4).collect()).unwrap();
        let input = SelInput::new(m, sel).unwrap();
        assert!(input.effective_bytes(true) < input.dense_bytes(true) / 3);
        assert_eq!(input.selected_cols(), 32);
        assert_eq!(input.rows(), 64);
    }

    #[test]
    fn dense_constructor_selects_everything() {
        let m = DenseMatrix::random(8, 8, 2);
        let input = SelInput::dense(m.clone());
        assert_eq!(input.gather(), m);
        assert_eq!(input.sel().len(), 8);
    }
}
