//! Common trait implemented by every sparse representation in this crate.

use crate::dense::DenseMatrix;

/// A sparse matrix representation that can report its logical shape, convert
/// back to dense form and account for its compressed storage footprint.
///
/// The storage accounting is what drives the memory model in the `moe` crate
/// (maximum-batch-size experiments of Table 3) and the I/O-volume terms of the
/// kernel cost model.
pub trait SparseFormat {
    /// Logical (uncompressed) number of rows.
    fn rows(&self) -> usize;

    /// Logical (uncompressed) number of columns.
    fn cols(&self) -> usize;

    /// Number of explicitly stored non-zero values.
    fn nnz(&self) -> usize;

    /// Reconstruct the equivalent dense matrix.
    fn to_dense(&self) -> DenseMatrix;

    /// Bytes needed to store the compressed representation, including index
    /// and metadata structures. `bf16` selects 2-byte instead of 4-byte
    /// values.
    fn storage_bytes(&self, bf16: bool) -> usize;

    /// Fraction of logical entries that are *not* stored, in `[0, 1]`.
    fn sparsity(&self) -> f64 {
        let total = self.rows() * self.cols();
        if total == 0 {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / total as f64
    }

    /// Compression ratio of this format versus dense storage at the same
    /// value precision (dense bytes / compressed bytes).
    fn compression_ratio(&self, bf16: bool) -> f64 {
        let dense = self.rows() * self.cols() * if bf16 { 2 } else { 4 };
        let this = self.storage_bytes(bf16);
        if this == 0 {
            return 1.0;
        }
        dense as f64 / this as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake;

    impl SparseFormat for Fake {
        fn rows(&self) -> usize {
            4
        }
        fn cols(&self) -> usize {
            4
        }
        fn nnz(&self) -> usize {
            4
        }
        fn to_dense(&self) -> DenseMatrix {
            DenseMatrix::zeros(4, 4)
        }
        fn storage_bytes(&self, bf16: bool) -> usize {
            4 * if bf16 { 2 } else { 4 }
        }
    }

    #[test]
    fn default_sparsity_and_compression() {
        let f = Fake;
        assert!((f.sparsity() - 0.75).abs() < 1e-12);
        assert!((f.compression_ratio(false) - 4.0).abs() < 1e-12);
        assert!((f.compression_ratio(true) - 4.0).abs() < 1e-12);
    }
}
