//! The V:N:M format of the VENOM baseline (Castro et al., SC'23).
//!
//! VENOM extends hardware 2:4 sparsity with an extra, coarser vector-wise
//! pruning step so that arbitrary sparsity ratios above 50% become reachable
//! on Sparse Tensor Cores:
//!
//! * the matrix is split into row panels of `V` consecutive rows;
//! * inside a panel, every group of `M` columns keeps only `N` columns
//!   (a kept column is a `V`-long column vector — hence "vector-wise");
//! * the surviving columns are compacted and 2:4 element-wise sparsity is
//!   applied along each row of the compacted panel.
//!
//! The resulting encoding is `{values, column indices, 2:4 metadata}` and is
//! efficient for sparse-weight x *dense*-input products (Figure 6 ➊). Its
//! weakness — the one Samoyeds fixes — is that when the *input* is also
//! sparse the skipped rows/columns fragment the input tiles (Figure 6 ➋-➍).

use crate::dense::DenseMatrix;
use crate::error::{Result, SparseError};
use crate::nm::NmConfig;
use crate::traits::SparseFormat;
use serde::{Deserialize, Serialize};

/// Configuration of a V:N:M matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VenomConfig {
    /// Row-panel height (vector length of the column vectors being pruned).
    pub v: usize,
    /// Columns kept per group of `m` within a panel.
    pub n: usize,
    /// Column group size.
    pub m: usize,
}

impl VenomConfig {
    /// The 64:2:8 configuration highlighted in the VENOM paper, reaching 75%
    /// total sparsity when combined with 2:4.
    pub const V64_2_8: VenomConfig = VenomConfig { v: 64, n: 2, m: 8 };

    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.v == 0 || self.n == 0 || self.m == 0 || self.n > self.m {
            return Err(SparseError::config(format!(
                "invalid V:N:M = {}:{}:{}",
                self.v, self.n, self.m
            )));
        }
        // The compacted panel must still be divisible by the 2:4 group size.
        if !(self.n * 4).is_multiple_of(4) {
            return Err(SparseError::config(
                "kept columns not 2:4 alignable".to_string(),
            ));
        }
        Ok(())
    }

    /// Overall sparsity after both pruning steps (column pruning then 2:4).
    pub fn sparsity(&self) -> f64 {
        1.0 - (self.n as f64 / self.m as f64) * 0.5
    }
}

/// A matrix stored in VENOM V:N:M form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VenomMatrix {
    rows: usize,
    cols: usize,
    config: VenomConfig,
    /// Kept column indices per panel: `panels x (col_groups * n)`, each entry
    /// is an absolute column index of the original matrix.
    col_indices: Vec<u32>,
    /// Compressed values after column compaction and 2:4 pruning:
    /// `rows x (kept_cols / 2)` row-major.
    values: Vec<f32>,
    /// 2-bit positions (stored as u8) of kept elements inside their group of
    /// 4 compacted columns. Same shape as `values`.
    metadata: Vec<u8>,
}

impl VenomMatrix {
    /// Prune a dense matrix into V:N:M form using column-vector L2 norms for
    /// the vector-wise step and magnitude for the element-wise step.
    pub fn prune_from_dense(dense: &DenseMatrix, config: VenomConfig) -> Result<Self> {
        config.validate()?;
        let (rows, cols) = dense.shape();
        if rows % config.v != 0 {
            return Err(SparseError::shape(format!(
                "rows {rows} not divisible by panel height {}",
                config.v
            )));
        }
        if cols % config.m != 0 {
            return Err(SparseError::shape(format!(
                "cols {cols} not divisible by column group size {}",
                config.m
            )));
        }
        let kept_cols = cols / config.m * config.n;
        if !kept_cols.is_multiple_of(4) {
            return Err(SparseError::shape(format!(
                "kept columns {kept_cols} not divisible by 4 (2:4 requirement)"
            )));
        }
        let panels = rows / config.v;
        let col_groups = cols / config.m;

        let mut col_indices = Vec::with_capacity(panels * kept_cols);
        let mut values = Vec::with_capacity(rows * kept_cols / 2);
        let mut metadata = Vec::with_capacity(rows * kept_cols / 2);

        for p in 0..panels {
            let row_start = p * config.v;
            // Vector-wise step: score each column of each group by its L2
            // norm over the panel and keep the top-N.
            let mut panel_cols: Vec<u32> = Vec::with_capacity(kept_cols);
            for g in 0..col_groups {
                let mut scored: Vec<(usize, f32)> = (0..config.m)
                    .map(|j| {
                        let c = g * config.m + j;
                        let norm: f32 = (0..config.v)
                            .map(|i| {
                                let v = dense.get(row_start + i, c);
                                v * v
                            })
                            .sum();
                        (c, norm)
                    })
                    .collect();
                scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                let mut kept: Vec<usize> = scored[..config.n].iter().map(|x| x.0).collect();
                kept.sort_unstable();
                panel_cols.extend(kept.iter().map(|&c| c as u32));
            }
            // Element-wise step: 2:4 over the compacted columns, per row.
            for i in 0..config.v {
                let r = row_start + i;
                for q in 0..kept_cols / 4 {
                    let group_cols = &panel_cols[q * 4..(q + 1) * 4];
                    let group_vals: Vec<f32> = group_cols
                        .iter()
                        .map(|&c| dense.get(r, c as usize))
                        .collect();
                    let mut order: Vec<usize> = (0..4).collect();
                    order.sort_by(|&a, &b| {
                        group_vals[b]
                            .abs()
                            .partial_cmp(&group_vals[a].abs())
                            .unwrap_or(std::cmp::Ordering::Equal)
                    });
                    let mut kept2: Vec<usize> = order[..2].to_vec();
                    kept2.sort_unstable();
                    for &idx in &kept2 {
                        values.push(group_vals[idx]);
                        metadata.push(idx as u8);
                    }
                }
            }
            col_indices.extend_from_slice(&panel_cols);
        }

        Ok(Self {
            rows,
            cols,
            config,
            col_indices,
            values,
            metadata,
        })
    }

    /// Configuration of this matrix.
    pub fn config(&self) -> VenomConfig {
        self.config
    }

    /// Number of columns kept per panel after the vector-wise step.
    pub fn kept_cols(&self) -> usize {
        self.cols / self.config.m * self.config.n
    }

    /// Number of values stored per row (after the element-wise 2:4 step).
    pub fn stored_per_row(&self) -> usize {
        self.kept_cols() / 2
    }

    /// Number of row panels.
    pub fn panels(&self) -> usize {
        self.rows / self.config.v
    }

    /// Kept column indices of panel `p` (length [`Self::kept_cols`]).
    pub fn panel_col_indices(&self, p: usize) -> &[u32] {
        let k = self.kept_cols();
        &self.col_indices[p * k..(p + 1) * k]
    }

    /// Compressed values of row `r`.
    pub fn values_row(&self, r: usize) -> &[f32] {
        let k = self.stored_per_row();
        &self.values[r * k..(r + 1) * k]
    }

    /// Metadata of row `r`.
    pub fn metadata_row(&self, r: usize) -> &[u8] {
        let k = self.stored_per_row();
        &self.metadata[r * k..(r + 1) * k]
    }

    /// The equivalent element-wise 2:4 configuration used inside panels.
    pub fn inner_nm(&self) -> NmConfig {
        NmConfig::TWO_FOUR
    }

    /// Sparse-weight x dense-input product `C = self * B`.
    pub fn spmm(&self, b: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != b.rows() {
            return Err(SparseError::shape(format!(
                "venom spmm {}x{} * {}x{}",
                self.rows,
                self.cols,
                b.rows(),
                b.cols()
            )));
        }
        let n_out = b.cols();
        let mut out = DenseMatrix::zeros(self.rows, n_out);
        for p in 0..self.panels() {
            let panel_cols = self.panel_col_indices(p);
            for i in 0..self.config.v {
                let r = p * self.config.v + i;
                let vals = self.values_row(r);
                let meta = self.metadata_row(r);
                let row_c = &mut out.as_mut_slice()[r * n_out..(r + 1) * n_out];
                for q in 0..self.kept_cols() / 4 {
                    for j in 0..2 {
                        let v = vals[q * 2 + j];
                        if v == 0.0 {
                            continue;
                        }
                        let compact_col = q * 4 + meta[q * 2 + j] as usize;
                        let col = panel_cols[compact_col] as usize;
                        let row_b = b.row(col);
                        for (o, x) in row_c.iter_mut().zip(row_b.iter()) {
                            *o += v * x;
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

impl SparseFormat for VenomMatrix {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn nnz(&self) -> usize {
        self.values.iter().filter(|v| **v != 0.0).count()
    }

    fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for p in 0..self.panels() {
            let panel_cols = self.panel_col_indices(p);
            for i in 0..self.config.v {
                let r = p * self.config.v + i;
                let vals = self.values_row(r);
                let meta = self.metadata_row(r);
                for q in 0..self.kept_cols() / 4 {
                    for j in 0..2 {
                        let compact_col = q * 4 + meta[q * 2 + j] as usize;
                        let col = panel_cols[compact_col] as usize;
                        out.set(r, col, vals[q * 2 + j]);
                    }
                }
            }
        }
        out
    }

    fn storage_bytes(&self, bf16: bool) -> usize {
        let value_bytes = if bf16 { 2 } else { 4 };
        self.values.len() * value_bytes
            + self.metadata.len().div_ceil(4)
            + self.col_indices.len() * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> VenomConfig {
        VenomConfig { v: 8, n: 2, m: 8 }
    }

    #[test]
    fn config_validation_and_sparsity() {
        assert!(cfg().validate().is_ok());
        assert!(VenomConfig { v: 0, n: 2, m: 8 }.validate().is_err());
        assert!(VenomConfig { v: 8, n: 9, m: 8 }.validate().is_err());
        assert!((VenomConfig::V64_2_8.sparsity() - 0.875).abs() < 1e-12);
        assert!((cfg().sparsity() - 0.875).abs() < 1e-12);
    }

    #[test]
    fn prune_shape_requirements() {
        assert!(VenomMatrix::prune_from_dense(&DenseMatrix::zeros(9, 16), cfg()).is_err());
        assert!(VenomMatrix::prune_from_dense(&DenseMatrix::zeros(16, 9), cfg()).is_err());
        assert!(VenomMatrix::prune_from_dense(&DenseMatrix::zeros(16, 16), cfg()).is_ok());
    }

    #[test]
    fn pruned_matrix_respects_both_patterns() {
        let d = DenseMatrix::random(32, 64, 17);
        let vm = VenomMatrix::prune_from_dense(&d, cfg()).unwrap();
        let dense = vm.to_dense();
        // Column-vector sparsity: per panel and column group, at most n
        // columns carry any nonzero.
        for p in 0..vm.panels() {
            for g in 0..d.cols() / 8 {
                let mut live_cols = 0;
                for j in 0..8 {
                    let c = g * 8 + j;
                    let any = (0..8).any(|i| dense.get(p * 8 + i, c) != 0.0);
                    if any {
                        live_cols += 1;
                    }
                }
                assert!(
                    live_cols <= 2,
                    "panel {p} group {g} has {live_cols} live columns"
                );
            }
        }
        // Total sparsity close to 87.5%.
        assert!((dense.sparsity() - 0.875).abs() < 0.02);
    }

    #[test]
    fn spmm_matches_dense_reference_of_pruned_matrix() {
        let d = DenseMatrix::random(16, 32, 23);
        let vm = VenomMatrix::prune_from_dense(&d, VenomConfig { v: 8, n: 4, m: 8 }).unwrap();
        let b = DenseMatrix::random(32, 24, 29);
        let expected = vm.to_dense().matmul(&b).unwrap();
        assert!(vm.spmm(&b).unwrap().allclose(&expected, 1e-4, 1e-4));
    }

    #[test]
    fn storage_is_smaller_than_dense() {
        let d = DenseMatrix::random(64, 128, 31);
        let vm = VenomMatrix::prune_from_dense(&d, VenomConfig::V64_2_8).unwrap();
        assert!(vm.storage_bytes(true) < d.storage_bytes(true) / 4);
        assert!(vm.compression_ratio(true) > 4.0);
    }

    #[test]
    fn keeps_high_norm_columns() {
        // Construct a matrix where columns 3 and 5 of the first group and
        // 11 and 13 of the second group dominate; they must survive pruning.
        let mut d = DenseMatrix::zeros(8, 16);
        for i in 0..8 {
            d.set(i, 3, 10.0);
            d.set(i, 5, -9.0);
            d.set(i, 11, 8.0);
            d.set(i, 13, -7.0);
            d.set(i, 0, 0.01);
            d.set(i, 9, 0.02);
        }
        let vm = VenomMatrix::prune_from_dense(&d, cfg()).unwrap();
        let cols = vm.panel_col_indices(0);
        assert_eq!(cols, &[3, 5, 11, 13]);
    }
}
