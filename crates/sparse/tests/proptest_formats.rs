//! Property-based tests over the sparse format invariants.

use proptest::prelude::*;
use samoyeds_sparse::nm::NmConfig;
use samoyeds_sparse::packing;
use samoyeds_sparse::venom::VenomConfig;
use samoyeds_sparse::{
    CooMatrix, CsrMatrix, DenseMatrix, NmMatrix, SamoyedsConfig, SamoyedsWeight, SelectionArray,
    SparseFormat, VenomMatrix,
};

fn arb_dense(max_rows: usize, max_cols: usize) -> impl Strategy<Value = DenseMatrix> {
    (1..=max_rows, 1..=max_cols, any::<u64>(), 0.0f64..0.95)
        .prop_map(|(r, c, seed, sp)| DenseMatrix::random_sparse(r, c, sp, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coo_roundtrip(d in arb_dense(24, 24)) {
        let coo = CooMatrix::from_dense(&d);
        prop_assert_eq!(coo.to_dense(), d.clone());
        prop_assert_eq!(coo.nnz(), d.nnz());
    }

    #[test]
    fn csr_roundtrip(d in arb_dense(24, 24)) {
        let csr = CsrMatrix::from_dense(&d);
        prop_assert_eq!(csr.to_dense(), d.clone());
        prop_assert_eq!(csr.nnz(), d.nnz());
    }

    #[test]
    fn csr_spmm_matches_dense(
        d in arb_dense(16, 16),
        seed in any::<u64>(),
        n in 1usize..12,
    ) {
        let b = DenseMatrix::random(d.cols(), n, seed);
        let csr = CsrMatrix::from_dense(&d);
        let expected = d.matmul(&b).unwrap();
        let got = csr.spmm(&b).unwrap();
        prop_assert!(got.allclose(&expected, 1e-4, 1e-4));
    }

    #[test]
    fn nm_prune_preserves_pattern_and_values(
        rows in 1usize..16,
        groups in 1usize..8,
        seed in any::<u64>(),
    ) {
        let d = DenseMatrix::random(rows, groups * 4, seed);
        let nm = NmMatrix::prune_from_dense(&d, NmConfig::TWO_FOUR).unwrap();
        let dense = nm.to_dense();
        // Pattern: at most 2 nonzeros per group of 4.
        for r in 0..rows {
            for g in 0..groups {
                let cnt = (0..4).filter(|&j| dense.get(r, g * 4 + j) != 0.0).count();
                prop_assert!(cnt <= 2);
            }
        }
        // Every surviving value equals the original.
        for r in 0..rows {
            for c in 0..dense.cols() {
                let v = dense.get(r, c);
                prop_assert!(v == 0.0 || v == d.get(r, c));
            }
        }
        // Norm of kept values can never exceed the original norm.
        prop_assert!(dense.frobenius_norm() <= d.frobenius_norm() + 1e-6);
    }

    #[test]
    fn nm_spmm_matches_its_dense_expansion(
        rows in 1usize..12,
        groups in 1usize..6,
        n in 1usize..10,
        seed in any::<u64>(),
    ) {
        let d = DenseMatrix::random(rows, groups * 4, seed);
        let nm = NmMatrix::prune_from_dense(&d, NmConfig::TWO_FOUR).unwrap();
        let b = DenseMatrix::random(d.cols(), n, seed.wrapping_add(1));
        let expected = nm.to_dense().matmul(&b).unwrap();
        let got = nm.spmm(&b).unwrap();
        prop_assert!(got.allclose(&expected, 1e-3, 1e-3));
    }

    #[test]
    fn venom_spmm_matches_its_dense_expansion(
        panels in 1usize..4,
        col_groups in 1usize..4,
        n in 1usize..8,
        seed in any::<u64>(),
    ) {
        // Two column groups per unit so the kept-column count stays a
        // multiple of 4 (the 2:4 alignment requirement).
        let cfg = VenomConfig { v: 8, n: 2, m: 8 };
        let d = DenseMatrix::random(panels * 8, col_groups * 16, seed);
        let vm = VenomMatrix::prune_from_dense(&d, cfg).unwrap();
        let b = DenseMatrix::random(d.cols(), n, seed.wrapping_add(2));
        let expected = vm.to_dense().matmul(&b).unwrap();
        let got = vm.spmm(&b).unwrap();
        prop_assert!(got.allclose(&expected, 1e-3, 1e-3));
    }

    #[test]
    fn samoyeds_prune_invariants(
        row_blocks in 1usize..6,
        col_blocks in 1usize..4,
        seed in any::<u64>(),
    ) {
        let cfg = SamoyedsConfig { n: 1, m: 2, v: 16 };
        let d = DenseMatrix::random(row_blocks * 2, col_blocks * 16, seed);
        let w = SamoyedsWeight::prune_from_dense(&d, cfg).unwrap();
        let dense = w.to_dense();
        // Values are a subset of the original.
        for r in 0..d.rows() {
            for c in 0..d.cols() {
                let v = dense.get(r, c);
                prop_assert!(v == 0.0 || v == d.get(r, c));
            }
        }
        // Per block only one sub-row is live; per group of 4, at most 2 nonzeros.
        for rb in 0..row_blocks {
            for cb in 0..col_blocks {
                let live = (0..2)
                    .filter(|&i| (0..16).any(|j| dense.get(rb * 2 + i, cb * 16 + j) != 0.0))
                    .count();
                prop_assert!(live <= 1);
            }
        }
        // Storage strictly smaller than dense.
        prop_assert!(w.storage_bytes(true) < d.storage_bytes(true));
    }

    #[test]
    fn samoyeds_spmm_selected_equals_gather_then_matmul(
        row_blocks in 1usize..4,
        col_blocks in 1usize..3,
        n_total in 4usize..24,
        seed in any::<u64>(),
    ) {
        let cfg = SamoyedsConfig { n: 1, m: 2, v: 16 };
        let d = DenseMatrix::random(row_blocks * 2, col_blocks * 16, seed);
        let w = SamoyedsWeight::prune_from_dense(&d, cfg).unwrap();
        let b = DenseMatrix::random(d.cols(), n_total, seed.wrapping_add(3));
        // Select every other column.
        let sel: Vec<usize> = (0..n_total).step_by(2).collect();
        let expected = w.to_dense().matmul(&b.select_columns(&sel).unwrap()).unwrap();
        let got = w.spmm_selected(&b, &sel).unwrap();
        prop_assert!(got.allclose(&expected, 1e-3, 1e-3));
    }

    #[test]
    fn venom_prune_roundtrip_is_idempotent(
        panels in 1usize..4,
        col_groups in 1usize..4,
        seed in any::<u64>(),
    ) {
        // Encoding the dense expansion of a pruned matrix must reproduce the
        // same matrix: the V:N:M structure is a fixed point of its own
        // magnitude pruning.
        let cfg = VenomConfig { v: 8, n: 2, m: 8 };
        let d = DenseMatrix::random(panels * 8, col_groups * 16, seed);
        let vm = VenomMatrix::prune_from_dense(&d, cfg).unwrap();
        let dense = vm.to_dense();
        let vm2 = VenomMatrix::prune_from_dense(&dense, cfg).unwrap();
        prop_assert_eq!(vm2.to_dense(), dense.clone());
        // Shape is preserved, the stored nonzeros match the expansion, and
        // the compressed encoding beats dense storage.
        prop_assert_eq!((vm.rows(), vm.cols()), d.shape());
        prop_assert_eq!(vm.nnz(), dense.nnz());
        prop_assert!(vm.storage_bytes(true) < d.storage_bytes(true));
        prop_assert!(vm.compression_ratio(true) > 1.0);
    }

    #[test]
    fn samoyeds_prune_roundtrip_is_idempotent(
        row_blocks in 1usize..5,
        col_blocks in 1usize..4,
        seed in any::<u64>(),
    ) {
        let cfg = SamoyedsConfig { n: 1, m: 2, v: 16 };
        let d = DenseMatrix::random(row_blocks * 2, col_blocks * 16, seed);
        let w = SamoyedsWeight::prune_from_dense(&d, cfg).unwrap();
        let dense = w.to_dense();
        let w2 = SamoyedsWeight::prune_from_dense(&dense, cfg).unwrap();
        prop_assert_eq!(w2.to_dense(), dense.clone());
        prop_assert_eq!((w.rows(), w.cols()), d.shape());
        prop_assert_eq!(w.nnz(), dense.nnz());
        // The dual-side format must compress at both precisions.
        prop_assert!(w.storage_bytes(true) < d.storage_bytes(true));
        prop_assert!(w.storage_bytes(false) < d.storage_bytes(false));
        // The unselected spmm path agrees with the dense expansion too.
        let b = DenseMatrix::random(d.cols(), 6, seed.wrapping_add(9));
        let expected = dense.matmul(&b).unwrap();
        let got = w.spmm(&b).unwrap();
        prop_assert!(got.allclose(&expected, 1e-3, 1e-3));
    }

    #[test]
    fn metadata_packing_roundtrip(values in proptest::collection::vec(0u8..4, 256)) {
        let reorganized = packing::reorganize_metadata_tile(&values).unwrap();
        let restored = packing::restore_metadata_tile(&reorganized).unwrap();
        prop_assert_eq!(restored, values);
    }

    #[test]
    fn selection_array_from_mask_is_sorted_and_bounded(mask in proptest::collection::vec(any::<bool>(), 0..64)) {
        let sel = SelectionArray::from_mask(&mask);
        let idx = sel.indices();
        for w in idx.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for &i in idx {
            prop_assert!((i as usize) < mask.len());
        }
        prop_assert_eq!(idx.len(), mask.iter().filter(|&&b| b).count());
    }
}
