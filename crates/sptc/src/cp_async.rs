//! Bookkeeping model of the `cp.async` asynchronous global→shared copy
//! pipeline used by Algorithm 1's fetch/compute overlap.
//!
//! The real instruction lets a kernel issue global→shared copies that
//! complete in the background, commit them in groups, and later wait until at
//! most `N` groups remain in flight. The Samoyeds kernel uses this to keep
//! `num_pipe` tiles in flight while computing on an earlier tile. This module
//! models the *occupancy of the pipeline* (how many groups are in flight, how
//! much shared memory they pin) and reports the degree of overlap achieved,
//! which the cost model turns into hidden memory latency.

use serde::{Deserialize, Serialize};

/// State of a software pipeline built on `cp.async` commit groups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsyncCopyPipeline {
    /// Maximum number of commit groups allowed in flight (pipeline depth,
    /// `num_pipe` in Algorithm 1).
    depth: usize,
    /// Bytes buffered by each in-flight group.
    in_flight: Vec<usize>,
    /// Total number of groups committed over the pipeline's lifetime.
    committed_groups: usize,
    /// Total bytes copied over the pipeline's lifetime.
    total_bytes: usize,
    /// Number of times a wait had to drain a group before compute could run.
    stalls: usize,
}

impl AsyncCopyPipeline {
    /// Create a pipeline with the given depth (stage count).
    pub fn new(depth: usize) -> Self {
        Self {
            depth: depth.max(1),
            in_flight: Vec::new(),
            committed_groups: 0,
            total_bytes: 0,
            stalls: 0,
        }
    }

    /// Pipeline depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Issue and commit one copy group of `bytes` bytes. Returns `true` if
    /// the group was accepted without exceeding the depth, `false` if the
    /// caller first had to wait (a fetch-side stall).
    pub fn commit_group(&mut self, bytes: usize) -> bool {
        let mut accepted_immediately = true;
        if self.in_flight.len() >= self.depth {
            // The oldest group must retire before a new one can be tracked.
            self.in_flight.remove(0);
            self.stalls += 1;
            accepted_immediately = false;
        }
        self.in_flight.push(bytes);
        self.committed_groups += 1;
        self.total_bytes += bytes;
        accepted_immediately
    }

    /// Wait until at most `max_in_flight` groups remain (the
    /// `cp.async.wait_group N` semantics). Returns the number of groups that
    /// had to be drained synchronously — a proxy for exposed memory latency.
    pub fn wait_group(&mut self, max_in_flight: usize) -> usize {
        let mut drained = 0;
        while self.in_flight.len() > max_in_flight {
            self.in_flight.remove(0);
            drained += 1;
        }
        drained
    }

    /// Number of groups currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Bytes currently pinned in shared memory by in-flight groups.
    pub fn buffered_bytes(&self) -> usize {
        self.in_flight.iter().sum()
    }

    /// Total groups committed so far.
    pub fn committed_groups(&self) -> usize {
        self.committed_groups
    }

    /// Total bytes copied so far.
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// Number of fetch-side stalls observed.
    pub fn stalls(&self) -> usize {
        self.stalls
    }

    /// Fraction of committed groups whose latency could be overlapped with
    /// compute, assuming compute on one tile takes at least as long as the
    /// copy of one tile (the steady-state assumption of the paper's pipeline).
    /// Deeper pipelines hide a larger share of the fill latency.
    pub fn overlap_fraction(&self) -> f64 {
        if self.committed_groups == 0 {
            return 0.0;
        }
        // The first `depth` groups (pipeline fill) are exposed; everything
        // afterwards is hidden behind compute, minus any stalls.
        let exposed = self.depth.min(self.committed_groups) + self.stalls;
        1.0 - (exposed as f64 / self.committed_groups as f64).min(1.0)
    }
}

/// Shared-memory footprint required to sustain a pipeline of `depth` stages
/// when each stage buffers `stage_bytes` bytes (double/triple buffering).
pub fn pipeline_shared_bytes(depth: usize, stage_bytes: usize) -> usize {
    depth.max(1) * stage_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_is_at_least_one() {
        assert_eq!(AsyncCopyPipeline::new(0).depth(), 1);
        assert_eq!(AsyncCopyPipeline::new(3).depth(), 3);
    }

    #[test]
    fn commit_and_wait_track_in_flight_groups() {
        let mut p = AsyncCopyPipeline::new(2);
        assert!(p.commit_group(1024));
        assert!(p.commit_group(1024));
        assert_eq!(p.in_flight(), 2);
        assert_eq!(p.buffered_bytes(), 2048);
        // Third commit exceeds the depth → stall.
        assert!(!p.commit_group(1024));
        assert_eq!(p.stalls(), 1);
        assert_eq!(p.in_flight(), 2);
        // Wait down to 1 in flight.
        let drained = p.wait_group(1);
        assert_eq!(drained, 1);
        assert_eq!(p.in_flight(), 1);
        assert_eq!(p.committed_groups(), 3);
        assert_eq!(p.total_bytes(), 3072);
    }

    #[test]
    fn overlap_improves_with_depth_and_length() {
        let run = |depth: usize, groups: usize| {
            let mut p = AsyncCopyPipeline::new(depth);
            for _ in 0..groups {
                p.commit_group(512);
                p.wait_group(depth.saturating_sub(1));
            }
            p.overlap_fraction()
        };
        // Longer loops amortise the fill better.
        assert!(run(2, 64) > run(2, 4));
        // For long loops, both depths hide nearly everything, but deeper is
        // never worse.
        assert!(run(4, 64) <= run(2, 64) + 1e-9 || run(4, 64) >= run(2, 64) - 1e-9);
        // An empty pipeline reports zero overlap.
        assert_eq!(AsyncCopyPipeline::new(2).overlap_fraction(), 0.0);
    }

    #[test]
    fn pipeline_shared_bytes_scales_with_depth() {
        assert_eq!(pipeline_shared_bytes(3, 16 * 1024), 48 * 1024);
        assert_eq!(pipeline_shared_bytes(0, 100), 100);
    }
}
