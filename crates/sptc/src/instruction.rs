//! Static descriptors of the warp-level instructions the kernels issue.
//!
//! The analytical cost model in `samoyeds-gpu-sim` converts an instruction
//! histogram (how many `mma.sp`, `ldmatrix`, `cp.async` … a kernel issues)
//! into cycles using per-device throughput numbers. This module defines the
//! instruction identities and their per-issue work so that histogram is
//! well-typed.

use serde::{Deserialize, Serialize};

/// The classes of warp-level instructions the simulated kernels issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstructionKind {
    /// Dense tensor-core matrix-multiply-accumulate.
    Mma,
    /// Sparse tensor-core matrix-multiply-accumulate (`mma.sp`).
    MmaSp,
    /// Collective shared-memory to register load.
    Ldmatrix,
    /// Asynchronous global-to-shared copy (`cp.async`), 16 bytes per thread.
    CpAsync,
    /// Plain shared-memory load (fallback path when `ldmatrix` is absent).
    SharedLoad,
    /// Plain global-memory load (fallback path when `cp.async` is absent).
    GlobalLoad,
    /// Global-memory store of results.
    GlobalStore,
    /// CUDA-core (non-tensor) FMA, used by baselines such as Sputnik.
    CudaFma,
    /// Register shuffle / data movement inside a warp (the data-stationary
    /// shuffle of §4.3).
    RegisterShuffle,
}

/// A warp-level instruction descriptor: tile shape, useful work and operand
/// traffic per issue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Instruction {
    /// Which class of instruction this is.
    pub kind: InstructionKind,
    /// `m` dimension of the tile computed per issue (0 for non-MMA).
    pub m: usize,
    /// `n` dimension of the tile computed per issue (0 for non-MMA).
    pub n: usize,
    /// `k` dimension (logical, i.e. before sparsity compression) per issue.
    pub k: usize,
    /// Floating point operations performed per issue (multiply + add counted
    /// separately, i.e. `2 * m * n * k_effective`).
    pub flops: usize,
    /// Bytes of operands consumed from registers per issue (A + B + metadata).
    pub operand_bytes: usize,
}

/// Dense `mma.m16n8k16` (bf16 in, f32 accumulate).
pub const MMA_M16N8K16: Instruction = Instruction {
    kind: InstructionKind::Mma,
    m: 16,
    n: 8,
    k: 16,
    flops: 2 * 16 * 8 * 16,
    // A: 16x16 bf16 = 512 B, B: 16x8 bf16 = 256 B.
    operand_bytes: 512 + 256,
};

/// Sparse `mma.sp.m16n8k32`: logical K is 32 but only 16 of the A operands
/// are stored; the useful FLOPs correspond to the logical dense product, the
/// operand traffic to the compressed one.
pub const MMA_SP_M16N8K32: Instruction = Instruction {
    kind: InstructionKind::MmaSp,
    m: 16,
    n: 8,
    k: 32,
    flops: 2 * 16 * 8 * 32,
    // A (compressed): 16x16 bf16 = 512 B, B: 32x8 bf16 = 512 B,
    // metadata: 16x16 x 2 bits = 64 B.
    operand_bytes: 512 + 512 + 64,
};

impl Instruction {
    /// FLOPs per byte of register operand traffic — the instruction-level
    /// arithmetic intensity. `mma.sp` achieves roughly twice the intensity of
    /// the dense `mma`, which is exactly the 2x peak-rate advantage of the
    /// Sparse Tensor Core.
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.operand_bytes == 0 {
            return 0.0;
        }
        self.flops as f64 / self.operand_bytes as f64
    }
}

/// A histogram of issued instructions, accumulated by the simulated kernels
/// and consumed by the cost model.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InstructionMix {
    counts: Vec<(InstructionKind, u64)>,
}

impl InstructionMix {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `count` issues of `kind`.
    pub fn record(&mut self, kind: InstructionKind, count: u64) {
        if count == 0 {
            return;
        }
        for entry in &mut self.counts {
            if entry.0 == kind {
                entry.1 += count;
                return;
            }
        }
        self.counts.push((kind, count));
    }

    /// Number of issues recorded for `kind`.
    pub fn count(&self, kind: InstructionKind) -> u64 {
        self.counts
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// Total number of instruction issues.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|(_, c)| c).sum()
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &InstructionMix) {
        for &(kind, count) in &other.counts {
            self.record(kind, count);
        }
    }

    /// Iterate over `(kind, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (InstructionKind, u64)> + '_ {
        self.counts.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_mma_has_double_the_intensity_of_dense() {
        let dense = MMA_M16N8K16.arithmetic_intensity();
        let sparse = MMA_SP_M16N8K32.arithmetic_intensity();
        // 2x logical K per issue; the larger B operand and the metadata eat
        // part of that, leaving a 1.3x-2x intensity advantage.
        let ratio = sparse / dense;
        assert!(ratio > 1.3 && ratio < 2.1, "ratio {ratio}");
    }

    #[test]
    fn instruction_flops_match_tile_shape() {
        assert_eq!(MMA_M16N8K16.flops, 2 * 16 * 8 * 16);
        assert_eq!(MMA_SP_M16N8K32.flops, 2 * 16 * 8 * 32);
        assert_eq!(MMA_SP_M16N8K32.kind, InstructionKind::MmaSp);
    }

    #[test]
    fn mix_records_and_merges() {
        let mut a = InstructionMix::new();
        a.record(InstructionKind::MmaSp, 10);
        a.record(InstructionKind::MmaSp, 5);
        a.record(InstructionKind::CpAsync, 3);
        a.record(InstructionKind::Ldmatrix, 0);
        assert_eq!(a.count(InstructionKind::MmaSp), 15);
        assert_eq!(a.count(InstructionKind::Ldmatrix), 0);
        assert_eq!(a.total(), 18);

        let mut b = InstructionMix::new();
        b.record(InstructionKind::CpAsync, 7);
        b.record(InstructionKind::GlobalStore, 2);
        a.merge(&b);
        assert_eq!(a.count(InstructionKind::CpAsync), 10);
        assert_eq!(a.count(InstructionKind::GlobalStore), 2);
        assert_eq!(a.iter().count(), 3);
    }
}
