//! Model of the `ldmatrix` collective shared-memory→register load and of the
//! shared-memory bank behaviour that motivates the permuted (swizzled) layout
//! of §4.4.
//!
//! `ldmatrix` lets the 32 threads of a warp cooperatively load one or more
//! 8x8 sub-matrices of 16-bit elements: each thread supplies the address of
//! one 8-element row and receives a packed register. Performance hinges on
//! how those 32 row addresses map onto the 32 shared-memory banks — a naive
//! row-major tile layout makes rows that sit in the same bank collide, while
//! the XOR-swizzled layout used by the Samoyeds kernel spreads them evenly.

use serde::{Deserialize, Serialize};

/// Number of shared-memory banks on all modeled GPUs.
pub const SHARED_BANKS: usize = 32;
/// Bank width in bytes.
pub const BANK_BYTES: usize = 4;
/// Threads per warp.
pub const WARP_SIZE: usize = 32;

/// How a tile is laid out in shared memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SharedLayout {
    /// Plain row-major placement.
    Naive,
    /// XOR-swizzled placement (the "permutation" of §4.4) that removes bank
    /// conflicts for `ldmatrix`-style accesses.
    Swizzled,
}

/// Compute the byte offset of element `(row, col)` of a `rows x row_bytes`
/// tile under the given layout. `element_bytes` is the size of one element.
pub fn shared_offset(
    layout: SharedLayout,
    row: usize,
    col: usize,
    row_stride_bytes: usize,
    element_bytes: usize,
) -> usize {
    let linear = row * row_stride_bytes + col * element_bytes;
    match layout {
        SharedLayout::Naive => linear,
        SharedLayout::Swizzled => {
            // Swizzle at 16-byte (ldmatrix row fragment) granularity: XOR the
            // 16-byte chunk index within the row with the row index. This is
            // the standard cp.async/ldmatrix swizzle pattern.
            let chunk = 16usize;
            let row_chunks = (row_stride_bytes / chunk).max(1);
            let chunk_in_row = (col * element_bytes) / chunk;
            let offset_in_chunk = (col * element_bytes) % chunk;
            let swizzled_chunk = (chunk_in_row ^ row) % row_chunks;
            row * row_stride_bytes + swizzled_chunk * chunk + offset_in_chunk
        }
    }
}

/// The bank a byte offset falls into.
pub fn bank_of(offset_bytes: usize) -> usize {
    (offset_bytes / BANK_BYTES) % SHARED_BANKS
}

/// Simulate one `ldmatrix.x4` issue: the 32 threads of a warp each load an
/// 8-element row of 16-bit values (16 bytes) starting at the given offsets.
/// Returns the number of shared-memory passes (1 = conflict-free; `p` means
/// the hardware needed `p` serialised passes because addresses collided on
/// banks).
pub fn ldmatrix_passes(row_offsets: &[usize]) -> usize {
    // Each 16-byte row spans 4 consecutive banks. Count, per pass-group of 8
    // threads (a phase handles 8 addresses on Ampere/Ada), the worst bank
    // multiplicity.
    let mut worst = 1usize;
    for phase in row_offsets.chunks(8) {
        let mut bank_hits = [0usize; SHARED_BANKS];
        for &off in phase {
            // The 4 banks this 16-byte fragment touches.
            for i in 0..4 {
                bank_hits[bank_of(off + i * BANK_BYTES)] += 1;
            }
        }
        let phase_worst = bank_hits.iter().copied().max().unwrap_or(1).max(1);
        worst = worst.max(phase_worst);
    }
    worst
}

/// Number of serialised passes for loading a `tile_rows x tile_cols` tile of
/// 2-byte elements with `ldmatrix`, under the given shared-memory layout.
///
/// This is the quantity the kernel cost model uses to credit the swizzled
/// layout: the swizzled layout yields 1 pass, the naive layout typically
/// yields several when the row stride is a multiple of the bank period.
pub fn tile_ldmatrix_passes(
    layout: SharedLayout,
    tile_rows: usize,
    row_stride_bytes: usize,
) -> usize {
    // One ldmatrix row fragment per tile row; warp loads 32 fragments at a
    // time (or fewer for small tiles).
    let rows = tile_rows.min(WARP_SIZE);
    let offsets: Vec<usize> = (0..rows)
        .map(|r| shared_offset(layout, r, 0, row_stride_bytes, 2))
        .collect();
    ldmatrix_passes(&offsets)
}

/// A summary of shared-memory efficiency for one operand staging choice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StagingReport {
    /// Serialised bank passes per warp-level load (1 is ideal).
    pub passes: usize,
    /// Bytes staged per warp-level load.
    pub bytes: usize,
}

impl StagingReport {
    /// Effective bandwidth multiplier relative to the conflict-free case.
    pub fn efficiency(&self) -> f64 {
        1.0 / self.passes as f64
    }
}

/// Report for staging a `rows x cols` bf16 tile through shared memory with
/// the given layout.
pub fn staging_report(layout: SharedLayout, rows: usize, cols: usize) -> StagingReport {
    let row_stride = cols * 2;
    StagingReport {
        passes: tile_ldmatrix_passes(layout, rows, row_stride),
        bytes: rows * cols * 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_mapping_wraps_every_128_bytes() {
        assert_eq!(bank_of(0), 0);
        assert_eq!(bank_of(4), 1);
        assert_eq!(bank_of(124), 31);
        assert_eq!(bank_of(128), 0);
    }

    #[test]
    fn naive_layout_with_power_of_two_stride_conflicts() {
        // 64 x 64 bf16 tile: stride 128 bytes → every row starts in bank 0.
        let naive = tile_ldmatrix_passes(SharedLayout::Naive, 32, 128);
        assert!(naive >= 4, "expected heavy conflicts, got {naive} passes");
        let swizzled = tile_ldmatrix_passes(SharedLayout::Swizzled, 32, 128);
        assert!(
            swizzled <= 2,
            "swizzled layout should be nearly conflict-free, got {swizzled}"
        );
        assert!(swizzled < naive);
    }

    #[test]
    fn swizzle_is_a_permutation_within_each_row() {
        // All offsets of one row must remain distinct and within the row.
        let stride = 128;
        for row in 0..16 {
            // simlint::allow(hashmap): membership-only set in a test — the
            // iteration order is never observed
            let mut seen = std::collections::HashSet::new();
            for col in 0..64 {
                let off = shared_offset(SharedLayout::Swizzled, row, col, stride, 2);
                assert!(off >= row * stride && off < (row + 1) * stride);
                assert!(seen.insert(off), "collision at row {row} col {col}");
            }
        }
    }

    #[test]
    fn naive_layout_is_linear() {
        assert_eq!(shared_offset(SharedLayout::Naive, 2, 3, 64, 2), 2 * 64 + 6);
    }

    #[test]
    fn staging_report_efficiency() {
        let naive = staging_report(SharedLayout::Naive, 32, 64);
        let swz = staging_report(SharedLayout::Swizzled, 32, 64);
        assert_eq!(naive.bytes, swz.bytes);
        assert!(swz.efficiency() > naive.efficiency());
        assert!(swz.efficiency() <= 1.0);
    }

    #[test]
    fn single_phase_no_conflict_case() {
        // 8 rows with 16-byte strides across different banks: 1 pass.
        let offsets: Vec<usize> = (0..8).map(|r| r * 16).collect();
        assert_eq!(ldmatrix_passes(&offsets), 1);
    }
}
