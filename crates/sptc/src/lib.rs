//! Functional model of the (Sparse) Tensor Core instructions used by the
//! Samoyeds kernels.
//!
//! The paper's kernels are written against the PTX `mma`/`mma.sp` warp-level
//! matrix instructions, the `ldmatrix` collective load and the `cp.async`
//! asynchronous global→shared copy (§2.3, §4.1, §5.1). None of those exist on
//! a CPU, so this crate provides:
//!
//! * [`mma`] — bit-faithful *functional* semantics of the dense
//!   `mma.m16n8k16` and sparse `mma.sp.m16n8k32` tile operations (values are
//!   computed exactly, operands optionally pass through bf16 rounding);
//! * [`instruction`] — static descriptors of each instruction (tile shape,
//!   FLOPs, operand bytes, issue cost) consumed by the analytical cost model
//!   in `samoyeds-gpu-sim`;
//! * [`ldmatrix`] — the collective shared-memory→register load, including the
//!   bank-conflict behaviour of swizzled vs. naive shared-memory layouts;
//! * [`cp_async`] — the asynchronous copy pipeline bookkeeping (commit
//!   groups / wait groups) that Algorithm 1's fetch/compute overlap relies on.
//!
//! Keeping the functional and timing aspects separate lets every kernel in
//! `samoyeds-kernels` be verified for numerical correctness on the CPU while
//! its performance is predicted by the same instruction stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cp_async;
pub mod instruction;
pub mod ldmatrix;
pub mod mma;

pub use instruction::{Instruction, InstructionKind, MMA_M16N8K16, MMA_SP_M16N8K32};
pub use mma::{mma_m16n8k16, mma_sp_m16n8k32, MmaTile, SparseATile};
