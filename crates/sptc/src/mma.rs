//! Functional semantics of the dense `mma.m16n8k16` and sparse
//! `mma.sp.m16n8k32` warp-level tile operations.
//!
//! The hardware instruction distributes the operand fragments over the 32
//! threads of a warp; numerically, however, it simply computes
//! `C += A * B` on a `16 x k` by `k x 8` tile, with `A` supplied in a 2:4
//! compressed form for the sparse variant. This module implements exactly
//! that tile-level contract so kernels can be validated on the CPU.

use samoyeds_sparse::dense::quantize_bf16;
use samoyeds_sparse::{DenseMatrix, Result, SparseError};
use serde::{Deserialize, Serialize};

/// Rows of the accumulator tile (`m`).
pub const MMA_M: usize = 16;
/// Columns of the accumulator tile (`n`).
pub const MMA_N: usize = 8;
/// Reduction depth of the dense instruction.
pub const MMA_K_DENSE: usize = 16;
/// Logical reduction depth of the sparse instruction (2:4 compressed to 16).
pub const MMA_K_SPARSE: usize = 32;

/// A dense operand/accumulator tile stored row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MmaTile {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl MmaTile {
    /// Create a zeroed tile.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wrap a row-major buffer as a tile.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(SparseError::shape(format!(
                "tile data length {} != {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Extract a `rows x cols` tile from `m` starting at `(row0, col0)`,
    /// zero-padding anything that falls outside the matrix (the padding the
    /// MoE layer needs when a tile straddles the token count).
    pub fn from_matrix(
        m: &DenseMatrix,
        row0: usize,
        col0: usize,
        rows: usize,
        cols: usize,
    ) -> Self {
        let mut t = MmaTile::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if row0 + r < m.rows() && col0 + c < m.cols() {
                    t.set(r, c, m.get(row0 + r, col0 + c));
                }
            }
        }
        t
    }

    /// Tile rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Tile columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Read one element.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Write one element.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow the row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Round every element to bf16 precision (operand quantisation).
    pub fn to_bf16(&self) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| quantize_bf16(*v)).collect(),
        }
    }

    /// Accumulate this tile into a `DenseMatrix` at offset `(row0, col0)`,
    /// ignoring elements that fall outside the destination.
    pub fn accumulate_into(&self, dst: &mut DenseMatrix, row0: usize, col0: usize) {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if row0 + r < dst.rows() && col0 + c < dst.cols() {
                    let cur = dst.get(row0 + r, col0 + c);
                    dst.set(row0 + r, col0 + c, cur + self.get(r, c));
                }
            }
        }
    }
}

/// The compressed `A` operand of `mma.sp.m16n8k32`: 16 rows of 16 stored
/// values plus, for each stored value, its 2-bit position inside the group of
/// four logical columns it came from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseATile {
    /// `MMA_M x MMA_K_DENSE` compressed values, row-major.
    values: Vec<f32>,
    /// Same shape; each entry in `0..4`.
    metadata: Vec<u8>,
}

impl SparseATile {
    /// Build from explicit compressed values + metadata.
    pub fn new(values: Vec<f32>, metadata: Vec<u8>) -> Result<Self> {
        if values.len() != MMA_M * MMA_K_DENSE || metadata.len() != MMA_M * MMA_K_DENSE {
            return Err(SparseError::shape(format!(
                "sparse A tile needs {}x{} values and metadata",
                MMA_M, MMA_K_DENSE
            )));
        }
        if metadata.iter().any(|&m| m > 3) {
            return Err(SparseError::pattern(
                "metadata entry exceeds 2 bits".to_string(),
            ));
        }
        // Within each group of 2 stored values the positions must be strictly
        // increasing, as the hardware requires.
        for r in 0..MMA_M {
            for g in 0..MMA_K_DENSE / 2 {
                let a = metadata[r * MMA_K_DENSE + 2 * g];
                let b = metadata[r * MMA_K_DENSE + 2 * g + 1];
                if a >= b {
                    return Err(SparseError::pattern(format!(
                        "row {r} group {g}: metadata positions {a},{b} not strictly increasing"
                    )));
                }
            }
        }
        Ok(Self { values, metadata })
    }

    /// Compress a logical `16 x 32` dense tile that already satisfies 2:4
    /// sparsity. Groups with fewer than two non-zeros are padded with zeros
    /// at the first free positions.
    pub fn compress_from_dense(tile: &MmaTile) -> Result<Self> {
        if tile.rows() != MMA_M || tile.cols() != MMA_K_SPARSE {
            return Err(SparseError::shape(format!(
                "expected a {}x{} logical tile, got {}x{}",
                MMA_M,
                MMA_K_SPARSE,
                tile.rows(),
                tile.cols()
            )));
        }
        let mut values = vec![0.0f32; MMA_M * MMA_K_DENSE];
        let mut metadata = vec![0u8; MMA_M * MMA_K_DENSE];
        for r in 0..MMA_M {
            for g in 0..MMA_K_SPARSE / 4 {
                let nz: Vec<usize> = (0..4).filter(|&j| tile.get(r, g * 4 + j) != 0.0).collect();
                if nz.len() > 2 {
                    return Err(SparseError::pattern(format!(
                        "row {r} group {g} has {} nonzeros (2:4 violated)",
                        nz.len()
                    )));
                }
                let mut kept = nz;
                let mut cursor = 0usize;
                while kept.len() < 2 {
                    while kept.contains(&cursor) {
                        cursor += 1;
                    }
                    kept.push(cursor);
                    cursor += 1;
                }
                kept.sort_unstable();
                for (slot, &pos) in kept.iter().enumerate() {
                    values[r * MMA_K_DENSE + g * 2 + slot] = tile.get(r, g * 4 + pos);
                    metadata[r * MMA_K_DENSE + g * 2 + slot] = pos as u8;
                }
            }
        }
        Ok(Self { values, metadata })
    }

    /// Expand back to the logical `16 x 32` dense tile.
    pub fn decompress(&self) -> MmaTile {
        let mut tile = MmaTile::zeros(MMA_M, MMA_K_SPARSE);
        for r in 0..MMA_M {
            for g in 0..MMA_K_SPARSE / 4 {
                for slot in 0..2 {
                    let v = self.values[r * MMA_K_DENSE + g * 2 + slot];
                    let pos = self.metadata[r * MMA_K_DENSE + g * 2 + slot] as usize;
                    tile.set(r, g * 4 + pos, v);
                }
            }
        }
        tile
    }

    /// Borrow compressed values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Borrow metadata.
    pub fn metadata(&self) -> &[u8] {
        &self.metadata
    }
}

/// Dense `mma.m16n8k16`: `c += a * b` where `a` is `16 x 16`, `b` is
/// `16 x 8` and `c` is `16 x 8`. Operands are rounded to bf16 when
/// `bf16_operands` is set (accumulation stays in f32, as on hardware).
pub fn mma_m16n8k16(a: &MmaTile, b: &MmaTile, c: &mut MmaTile, bf16_operands: bool) -> Result<()> {
    if a.rows() != MMA_M || a.cols() != MMA_K_DENSE {
        return Err(SparseError::shape("mma A tile must be 16x16".to_string()));
    }
    if b.rows() != MMA_K_DENSE || b.cols() != MMA_N {
        return Err(SparseError::shape("mma B tile must be 16x8".to_string()));
    }
    if c.rows() != MMA_M || c.cols() != MMA_N {
        return Err(SparseError::shape("mma C tile must be 16x8".to_string()));
    }
    for i in 0..MMA_M {
        for j in 0..MMA_N {
            let mut acc = c.get(i, j);
            for l in 0..MMA_K_DENSE {
                let (x, y) = if bf16_operands {
                    (quantize_bf16(a.get(i, l)), quantize_bf16(b.get(l, j)))
                } else {
                    (a.get(i, l), b.get(l, j))
                };
                acc += x * y;
            }
            c.set(i, j, acc);
        }
    }
    Ok(())
}

/// Sparse `mma.sp.m16n8k32`: `c += A_logical * b` where `A_logical` is the
/// `16 x 32` expansion of the compressed operand and `b` is `32 x 8`.
///
/// The implementation works directly on the compressed form — each stored
/// value is multiplied with the `b` row its metadata points at — matching how
/// the hardware skips the pruned positions entirely.
pub fn mma_sp_m16n8k32(
    a: &SparseATile,
    b: &MmaTile,
    c: &mut MmaTile,
    bf16_operands: bool,
) -> Result<()> {
    if b.rows() != MMA_K_SPARSE || b.cols() != MMA_N {
        return Err(SparseError::shape("mma.sp B tile must be 32x8".to_string()));
    }
    if c.rows() != MMA_M || c.cols() != MMA_N {
        return Err(SparseError::shape("mma.sp C tile must be 16x8".to_string()));
    }
    for i in 0..MMA_M {
        for g in 0..MMA_K_SPARSE / 4 {
            for slot in 0..2 {
                let v = a.values[i * MMA_K_DENSE + g * 2 + slot];
                if v == 0.0 {
                    continue;
                }
                let pos = a.metadata[i * MMA_K_DENSE + g * 2 + slot] as usize;
                let k = g * 4 + pos;
                let av = if bf16_operands { quantize_bf16(v) } else { v };
                for j in 0..MMA_N {
                    let bv = if bf16_operands {
                        quantize_bf16(b.get(k, j))
                    } else {
                        b.get(k, j)
                    };
                    c.set(i, j, c.get(i, j) + av * bv);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use samoyeds_sparse::nm::{NmConfig, NmMatrix};
    use samoyeds_sparse::SparseFormat;

    fn random_tile(rows: usize, cols: usize, seed: u64) -> MmaTile {
        let m = DenseMatrix::random(rows, cols, seed);
        MmaTile::from_matrix(&m, 0, 0, rows, cols)
    }

    #[test]
    fn tile_construction_and_padding() {
        let m = DenseMatrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let t = MmaTile::from_matrix(&m, 2, 2, 4, 4);
        assert_eq!(t.get(0, 0), 10.0);
        assert_eq!(t.get(0, 1), 11.0);
        // Out-of-bounds region is zero padded.
        assert_eq!(t.get(2, 2), 0.0);
        assert_eq!(t.get(3, 3), 0.0);
        assert!(MmaTile::from_vec(2, 2, vec![0.0; 3]).is_err());
    }

    #[test]
    fn dense_mma_matches_reference_gemm() {
        let a = random_tile(16, 16, 1);
        let b = random_tile(16, 8, 2);
        let mut c = MmaTile::zeros(16, 8);
        mma_m16n8k16(&a, &b, &mut c, false).unwrap();

        let da = DenseMatrix::from_vec(16, 16, a.as_slice().to_vec()).unwrap();
        let db = DenseMatrix::from_vec(16, 8, b.as_slice().to_vec()).unwrap();
        let expected = da.matmul(&db).unwrap();
        let got = DenseMatrix::from_vec(16, 8, c.as_slice().to_vec()).unwrap();
        assert!(got.allclose(&expected, 1e-4, 1e-4));
    }

    #[test]
    fn dense_mma_shape_validation() {
        let a = random_tile(16, 16, 1);
        let b = random_tile(16, 8, 2);
        let mut bad_c = MmaTile::zeros(8, 8);
        assert!(mma_m16n8k16(&a, &b, &mut bad_c, false).is_err());
        let bad_a = random_tile(8, 16, 3);
        let mut c = MmaTile::zeros(16, 8);
        assert!(mma_m16n8k16(&bad_a, &b, &mut c, false).is_err());
        let bad_b = random_tile(8, 8, 3);
        assert!(mma_m16n8k16(&a, &bad_b, &mut c, false).is_err());
    }

    #[test]
    fn sparse_tile_compress_decompress_roundtrip() {
        // Build a 16x32 2:4-sparse tile via the NmMatrix pruner.
        let dense = DenseMatrix::random(16, 32, 5);
        let nm = NmMatrix::prune_from_dense(&dense, NmConfig::TWO_FOUR).unwrap();
        let pruned = nm.to_dense();
        let tile = MmaTile::from_matrix(&pruned, 0, 0, 16, 32);
        let sp = SparseATile::compress_from_dense(&tile).unwrap();
        assert_eq!(sp.decompress(), tile);
    }

    #[test]
    fn compress_rejects_pattern_violations() {
        let mut tile = MmaTile::zeros(16, 32);
        tile.set(0, 0, 1.0);
        tile.set(0, 1, 2.0);
        tile.set(0, 2, 3.0);
        assert!(SparseATile::compress_from_dense(&tile).is_err());
        let bad_shape = MmaTile::zeros(16, 16);
        assert!(SparseATile::compress_from_dense(&bad_shape).is_err());
    }

    #[test]
    fn metadata_validation_in_new() {
        let values = vec![0.0; 256];
        let mut meta = vec![0u8; 256];
        // Positions must be strictly increasing inside each pair.
        for g in 0..128 {
            meta[2 * g] = 0;
            meta[2 * g + 1] = 1;
        }
        assert!(SparseATile::new(values.clone(), meta.clone()).is_ok());
        meta[1] = 0;
        assert!(SparseATile::new(values.clone(), meta.clone()).is_err());
        meta[1] = 7;
        assert!(SparseATile::new(values.clone(), meta).is_err());
        assert!(SparseATile::new(values, vec![0u8; 10]).is_err());
    }

    #[test]
    fn sparse_mma_matches_dense_mma_on_expanded_operand() {
        let dense = DenseMatrix::random(16, 32, 9);
        let nm = NmMatrix::prune_from_dense(&dense, NmConfig::TWO_FOUR).unwrap();
        let pruned = nm.to_dense();
        let a_logical = MmaTile::from_matrix(&pruned, 0, 0, 16, 32);
        let sp = SparseATile::compress_from_dense(&a_logical).unwrap();
        let b = random_tile(32, 8, 10);

        // Reference: dense 16x32 x 32x8 product.
        let da = DenseMatrix::from_vec(16, 32, a_logical.as_slice().to_vec()).unwrap();
        let db = DenseMatrix::from_vec(32, 8, b.as_slice().to_vec()).unwrap();
        let expected = da.matmul(&db).unwrap();

        let mut c = MmaTile::zeros(16, 8);
        mma_sp_m16n8k32(&sp, &b, &mut c, false).unwrap();
        let got = DenseMatrix::from_vec(16, 8, c.as_slice().to_vec()).unwrap();
        assert!(got.allclose(&expected, 1e-4, 1e-4));
    }

    #[test]
    fn sparse_mma_accumulates_into_existing_c() {
        let dense = DenseMatrix::random(16, 32, 11);
        let nm = NmMatrix::prune_from_dense(&dense, NmConfig::TWO_FOUR).unwrap();
        let a_logical = MmaTile::from_matrix(&nm.to_dense(), 0, 0, 16, 32);
        let sp = SparseATile::compress_from_dense(&a_logical).unwrap();
        let b = random_tile(32, 8, 12);

        let mut c = MmaTile::zeros(16, 8);
        for r in 0..16 {
            for j in 0..8 {
                c.set(r, j, 1.5);
            }
        }
        let mut c2 = c.clone();
        mma_sp_m16n8k32(&sp, &b, &mut c2, false).unwrap();
        // c2 - 1.5 equals the product from a zero accumulator.
        let mut c0 = MmaTile::zeros(16, 8);
        mma_sp_m16n8k32(&sp, &b, &mut c0, false).unwrap();
        for r in 0..16 {
            for j in 0..8 {
                assert!((c2.get(r, j) - 1.5 - c0.get(r, j)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn bf16_operand_rounding_changes_little() {
        let dense = DenseMatrix::random(16, 32, 13);
        let nm = NmMatrix::prune_from_dense(&dense, NmConfig::TWO_FOUR).unwrap();
        let a_logical = MmaTile::from_matrix(&nm.to_dense(), 0, 0, 16, 32);
        let sp = SparseATile::compress_from_dense(&a_logical).unwrap();
        let b = random_tile(32, 8, 14);
        let mut exact = MmaTile::zeros(16, 8);
        let mut rounded = MmaTile::zeros(16, 8);
        mma_sp_m16n8k32(&sp, &b, &mut exact, false).unwrap();
        mma_sp_m16n8k32(&sp, &b, &mut rounded, true).unwrap();
        for r in 0..16 {
            for j in 0..8 {
                assert!((exact.get(r, j) - rounded.get(r, j)).abs() < 0.15);
            }
        }
    }

    #[test]
    fn accumulate_into_respects_bounds() {
        let t = random_tile(16, 8, 15);
        let mut dst = DenseMatrix::zeros(20, 10);
        t.accumulate_into(&mut dst, 10, 5);
        // Elements past the matrix edge are dropped, inside ones added.
        assert_eq!(dst.get(10, 5), t.get(0, 0));
        assert_eq!(dst.get(19, 9), t.get(9, 4));
        assert_eq!(dst.get(0, 0), 0.0);
    }
}
