//! Multi-GPU expert-parallel cluster walkthrough: shard one MoE model
//! across 1/2/4/8 GPUs under three weight representations, price the
//! all-to-all dispatch on the device's native interconnect, and compare
//! placement strategies on an imbalanced routing plan.
//!
//! Run with `cargo run --release --example cluster [model]` where `model`
//! is one of `qwen2` (default), `deepseek`, `mixtral`.

use samoyeds::dist::{
    min_gpus_to_fit, render_placement_comparison, ClusterBackend, ClusterConfig, ClusterEngine,
    ClusterReport,
};
use samoyeds::gpu_sim::DeviceSpec;
use samoyeds::moe::config::MoeModelConfig;
use samoyeds::serve::{ExecutionBackend, SchedulerConfig};

fn main() {
    let model = match std::env::args().nth(1).as_deref() {
        Some("deepseek") => MoeModelConfig::deepseek_moe(),
        Some("mixtral") => MoeModelConfig::mixtral_8x7b(),
        _ => MoeModelConfig::qwen2_moe(),
    };
    let tokens = 4096usize;

    // GPU-count sweep: dense vs VENOM vs Samoyeds on the consumer card
    // (PCIe all-to-all) and the A100 (NVLink all-to-all).
    let report = ClusterReport::gpu_count_sweep(&model, tokens, 42);
    for line in report.render_markdown() {
        println!("{line}");
    }

    // Fleet sizing: the compression lever in GPUs.
    let consumer = DeviceSpec::rtx4070_super();
    let dense = min_gpus_to_fit(&consumer, ClusterEngine::Dense, &model, tokens, 16);
    let samoyeds = min_gpus_to_fit(&consumer, ClusterEngine::Samoyeds, &model, tokens, 16);
    match (dense, samoyeds) {
        (Some(d), Some(s)) => println!(
            "\n-> fleet sizing on {}: dense weights need {d} GPU(s), Samoyeds {s} — \
             {:.1}x fewer GPUs for the same model\n",
            consumer.name,
            d as f64 / s as f64
        ),
        _ => println!(
            "\n-> fleet sizing on {}: dense {dense:?} vs Samoyeds {samoyeds:?} GPUs\n",
            consumer.name
        ),
    }

    // Placement under skewed routing: capacity-aware beats round-robin on
    // the straggler that paces every step.
    for line in render_placement_comparison(&model, &DeviceSpec::a100_40g(), 8, tokens, 1.5, 9) {
        println!("{line}");
    }

    // The same pod is a serving substrate: ClusterBackend implements the
    // scheduler's ExecutionBackend trait (see the cluster_serving example
    // for the full continuous-batching sweep).
    let backend = ClusterBackend::new(
        ClusterConfig::new(DeviceSpec::a100_40g(), 4, ClusterEngine::Samoyeds),
        model,
        &SchedulerConfig::default(),
    );
    println!("\nserving backend: {}", backend.describe());
}
