//! Cluster-aware continuous batching: the serving scheduler drives a whole
//! expert-parallel pod through the `ExecutionBackend` trait. One shared
//! Poisson request trace is served on 1/2/4/8-GPU pods over NVLink and PCIe
//! fabrics under dense, VENOM and Samoyeds weights; admission control runs
//! against the straggler GPU's memory budget and every step pays the
//! dispatch/combine all-to-all collectives.
//!
//! Run with `cargo run --release --example cluster_serving [model]` where
//! `model` is one of `qwen2` (default), `deepseek`, `mixtral`.

use samoyeds::dist::{ClusterBackend, ClusterConfig, ClusterEngine, ClusterServingReport};
use samoyeds::gpu_sim::DeviceSpec;
use samoyeds::moe::config::MoeModelConfig;
use samoyeds::serve::{ExecutionBackend, Scheduler, SchedulerConfig, TraceConfig};

fn main() {
    let model = match std::env::args().nth(1).as_deref() {
        Some("deepseek") => MoeModelConfig::deepseek_moe(),
        Some("mixtral") => MoeModelConfig::mixtral_8x7b(),
        _ => MoeModelConfig::qwen2_moe(),
    };
    let trace = TraceConfig {
        num_requests: 24,
        arrival_rate_rps: 8.0,
        prompt_len_range: (64, 256),
        output_len_range: (8, 32),
        seed: 42,
    };
    let scfg = SchedulerConfig::default();

    // The full sweep: fabrics x engines x pod sizes, one shared trace.
    let report = ClusterServingReport::sweep(&model, &trace, &scfg);
    for line in report.render_markdown() {
        println!("{line}");
    }

    // The headline cell: where compression turns a rejected trace into a
    // served one.
    match report.admission_contrast() {
        Some((device, link, gpus)) => println!(
            "\n-> on {gpus}x {device} ({link}): Samoyeds admits the trace, \
             dense weights are rejected for memory\n"
        ),
        None => println!("\n-> no admission contrast for this model\n"),
    }

    // One pod in detail, driven through the same generic scheduler that
    // serves a single GPU.
    let backend = ClusterBackend::new(
        ClusterConfig::new(DeviceSpec::a100_40g(), 4, ClusterEngine::Samoyeds),
        model.clone(),
        &scfg,
    );
    println!("backend: {}", backend.describe());
    let result = Scheduler::from_backend(backend, scfg).run(&trace.generate());
    let step_ms: f64 = result.steps.iter().map(|s| s.time_ms).sum();
    println!(
        "served {} requests in {:.0} ms across {} steps; {:.1}% of step time in all-to-all",
        result.completed.len(),
        result.makespan_ms,
        result.steps.len(),
        if step_ms > 0.0 {
            result.collective_ms() / step_ms * 100.0
        } else {
            0.0
        },
    );
}
