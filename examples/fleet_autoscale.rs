//! The online fleet control plane: heterogeneous replicas behind one
//! capability-aware dispatcher with SLO-driven autoscaling.
//!
//! A bursty (calm → spike → calm) Poisson trace is served by a mixed fleet —
//! a 2x A100 expert-parallel Samoyeds pod next to an RTX 4070 Super single —
//! whose autoscaler scales out (charging a warm-up) when the spike breaches
//! the p95-TTFT SLO and back in once utilization drops, then by the full
//! sweep of fleet compositions × dispatch policies × SLO targets.
//!
//! Run with `cargo run --release --example fleet_autoscale`.

use samoyeds::dist::{FleetAutoscaleReport, FleetKind};
use samoyeds::moe::config::MoeModelConfig;
use samoyeds::serve::{DispatchPolicy, FleetConfig, SchedulerConfig, SloAutoscaler};

fn main() {
    let model = MoeModelConfig::qwen2_moe();
    let trace = FleetAutoscaleReport::demo_trace();
    let scfg = SchedulerConfig::default();

    // The headline run in detail: the mixed fleet under a tight SLO.
    let config = FleetConfig {
        scheduler: scfg,
        policy: DispatchPolicy::least_outstanding(),
        tick_ms: 200.0,
        window_ms: 1_000.0,
        warmup_ms: 1_500.0,
        min_replicas: 2,
        max_replicas: 6,
        ..FleetConfig::default()
    };
    let requests = trace.generate();
    let controller = FleetKind::Mixed.controller(&model, config, &SloAutoscaler::new(400.0));
    // Validate-first: reject an ill-formed experiment before a single event
    // runs, and print the advisory warnings run() deliberately keeps quiet.
    let report = controller.validate(&requests);
    report.assert_valid();
    for diagnostic in report.diagnostics() {
        println!("{diagnostic}");
    }
    let metrics = controller.run(&requests);
    println!(
        "mixed fleet ({}): {} served, {} rejected, TTFT p95 {:.0} ms, \
         peak {} replicas, {} scale-outs / {} scale-ins",
        FleetKind::Mixed.name(),
        metrics.completed,
        metrics.rejected,
        metrics.ttft.p95_ms,
        metrics.replicas,
        metrics.scale_outs(),
        metrics.scale_ins(),
    );
    println!("\nscaling timeline:");
    for line in metrics.render_timeline() {
        println!("{line}");
    }
    println!("\nper-replica breakdown:");
    for r in &metrics.per_replica {
        println!(
            "- {} · assigned {} · completed {} · ready at {:.1} s{}",
            r.description,
            r.assigned,
            r.metrics.completed,
            r.ready_ms / 1e3,
            r.retired_ms
                .map_or_else(String::new, |t| format!(" · retired at {:.1} s", t / 1e3)),
        );
    }

    // The full sweep: fleets x policies x SLOs on the shared trace.
    println!();
    let report = FleetAutoscaleReport::sweep(&model, &trace, &scfg);
    for line in report.render_markdown() {
        println!("{line}");
    }
    match report.scale_out_contrast() {
        Some((samoyeds, dense)) => println!(
            "\n-> at the tight SLO, Samoyeds singles absorb the spike with {samoyeds} \
             scale-outs where dense singles need {dense}\n"
        ),
        None => println!("\n-> no scale-out contrast for this model\n"),
    }
}
