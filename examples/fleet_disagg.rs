//! Prefill/decode disaggregation with topology-priced KV-cache handoffs.
//!
//! The sweep serves the bursty autoscale demo trace with a four-pod fleet
//! split into prefill pods (A100 singles) and decode pods (RTX 4070 Super
//! singles), pods pinned to the GPUs of a 2×2 two-island topology. Requests
//! prefill on one side, then their prompt KV cache is handed off to the
//! decode pod with the most free KV budget — a transfer priced by the link
//! the pair actually shares: NVLink 3 inside an island, the InfiniBand NDR
//! spine across. The prefill:decode split sweeps 1:3 / 2:2 / 3:1 under
//! dense, VENOM and Samoyeds weights.
//!
//! The dense cells demonstrate the paper's memory lever: Qwen2-MoE's bf16
//! weights do not fit a 12 GiB decode pod, so dense serving cannot
//! disaggregate on this hardware at all — every dense split is rejected by
//! validation — while the compressed representations fit with KV headroom
//! to spare. The example prints the cell table, the best-split contrast,
//! and writes `fleet_disagg.json` — a Chrome trace-event file whose
//! instants mark every KV handoff start and landing (load it in
//! `chrome://tracing` or <https://ui.perfetto.dev>).
//!
//! Run with `cargo run --release --example fleet_disagg`.

use samoyeds::dist::DisaggSweepReport;
use samoyeds::moe::config::MoeModelConfig;
use samoyeds::serve::SchedulerConfig;

fn main() {
    let model = MoeModelConfig::qwen2_moe();
    let report = DisaggSweepReport::sweep(&model, &SchedulerConfig::default());

    for line in report.render_markdown() {
        println!("{line}");
    }

    match report.ratio_contrast() {
        Some((samoyeds, Some(dense))) => println!(
            "\nSamoyeds serves best at {}:{} vs dense at {}:{}",
            samoyeds.0, samoyeds.1, dense.0, dense.1
        ),
        Some((samoyeds, None)) => println!(
            "\nSamoyeds serves best at {}:{}; dense cannot disaggregate here — \
             the 12 GiB decode pods cannot hold its weights",
            samoyeds.0, samoyeds.1
        ),
        None => println!("\nno feasible Samoyeds split — nothing to contrast"),
    }

    let json = report.chrome_trace();
    let path = "fleet_disagg.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!(
            "wrote {path} ({} bytes, {} events) — KV handoff instants included; \
             load it in chrome://tracing or https://ui.perfetto.dev",
            json.len(),
            report.events.len()
        ),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
