//! Chaos engineering for the fleet control plane: crash a replica mid-spike
//! and compare what each recovery policy salvages.
//!
//! The sweep runs the bursty autoscale demo trace three times over the same
//! three-replica fleet, injecting an identical fault script into each run —
//! a replica crash right as the spike's requests are in flight, then a
//! transient link degradation — and varies only the [`RecoveryPolicy`]:
//! fail-fast (in-flight requests on the dead replica are failed),
//! re-admission (they re-queue on survivors after a weight transfer priced
//! over the cluster topology), and re-admission plus commissioning a cold
//! replacement through the warm-up path. It prints the policy table, the
//! fault/recovery timeline of the re-admission run, SLO attainment before /
//! during / after the fault window, and writes `fleet_faults.json` — a
//! Chrome trace-event file whose instants mark every crash, degradation and
//! recovery (load it in `chrome://tracing` or <https://ui.perfetto.dev>).
//!
//! Run with `cargo run --release --example fleet_faults`.
//!
//! [`RecoveryPolicy`]: samoyeds::serve::RecoveryPolicy

use samoyeds::dist::FaultSweepReport;
use samoyeds::moe::config::MoeModelConfig;
use samoyeds::serve::SchedulerConfig;

fn main() {
    let model = MoeModelConfig::qwen2_moe();
    let report = FaultSweepReport::sweep(&model, &SchedulerConfig::default());

    for line in report.render_markdown() {
        println!("{line}");
    }

    match report.readmit_recovery() {
        Some((recovery_ms, failed)) => println!(
            "\nre-admission recovers the crash in {recovery_ms:.1} ms with \
             {failed} requests lost (weight transfer: {:.1} ms over the spine)",
            report.transfer_ms
        ),
        None => println!("\nre-admission run recorded no crash — nothing to recover"),
    }

    let json = report.chrome_trace();
    let path = "fleet_faults.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!(
            "wrote {path} ({} bytes, {} events) — fault and recovery instants \
             included; load it in chrome://tracing or https://ui.perfetto.dev",
            json.len(),
            report.events.len()
        ),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
