//! Observability for the fleet control plane: re-run the mixed-fleet
//! autoscale demo with a recording telemetry sink and look at everything the
//! sink saw.
//!
//! The run itself is bit-identical to the sink-free one (the equivalence
//! suite pins this); on top of it the example prints the lifecycle counters
//! from the metrics registry, the per-request latency attribution table
//! (queue wait / prefill / decode telescoping exactly to end-to-end
//! latency), a few control-tick snapshots, and writes `fleet_trace.json` —
//! a Chrome trace-event file with one track per replica you can load in
//! `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! Run with `cargo run --release --example fleet_trace`.

use samoyeds::dist::FleetTraceReport;
use samoyeds::moe::config::MoeModelConfig;
use samoyeds::serve::SchedulerConfig;

fn main() {
    let model = MoeModelConfig::qwen2_moe();
    let report = FleetTraceReport::demo(&model, &SchedulerConfig::default());

    for line in report.render_markdown() {
        println!("{line}");
    }

    println!("\nslowest requests by end-to-end latency:");
    let mut slowest = report.timelines.clone();
    slowest.sort_by(|a, b| b.latency_ms().total_cmp(&a.latency_ms()));
    for t in slowest.iter().take(5) {
        println!(
            "- request {:>3} on replica {} · queued {:>6.1} ms · prefill {:>6.1} ms · \
             decode {:>6.1} ms · {:>4} output tokens{}",
            t.id,
            t.replica,
            t.queue_ms(),
            t.prefill_ms(),
            t.decode_ms(),
            t.output_len,
            t.tpot_ms()
                .map_or_else(String::new, |ms| format!(" · {ms:.1} ms/token")),
        );
    }

    println!("\ncontrol-tick time series (every 5th tick):");
    for snap in report.registry.snapshots.iter().step_by(5) {
        println!(
            "- t={:>6.1} s · {} routable / {} warming · utilization {:>5.1}% · \
             {} queued · p95 TTFT {}",
            snap.at_ms / 1e3,
            snap.routable,
            snap.warming,
            snap.utilization * 100.0,
            snap.queued,
            snap.p95_ttft_ms
                .map_or_else(|| "n/a".to_string(), |ms| format!("{ms:.0} ms")),
        );
    }

    let json = report.chrome_trace();
    let path = "fleet_trace.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!(
            "\nwrote {path} ({} bytes, {} events) — load it in chrome://tracing \
             or https://ui.perfetto.dev",
            json.len(),
            report.events.len()
        ),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
