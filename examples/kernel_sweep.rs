//! Kernel sweep: compare the Samoyeds kernel against the cuBLAS-, cuSPARSELt-,
//! VENOM- and Sputnik-like baselines across matrix sizes (the Figure 13
//! experiment in miniature) on any of the modeled GPUs.
//!
//! Run with `cargo run --release --example kernel_sweep [gpu]` where `gpu`
//! is one of `4070s`, `3090`, `4090`, `a100` (default `4070s`).

use samoyeds::gpu_sim::DeviceSpec;
use samoyeds::kernels::gemm_dense::DenseGemm;
use samoyeds::kernels::samoyeds_kernel::SamoyedsKernel;
use samoyeds::kernels::spmm_csr::CsrSpmm;
use samoyeds::kernels::spmm_nm::NmSpmm;
use samoyeds::kernels::spmm_venom::VenomSpmm;
use samoyeds::kernels::GemmProblem;
use samoyeds::sparse::samoyeds::SamoyedsConfig;

fn main() {
    let device = match std::env::args().nth(1).as_deref() {
        Some("3090") => DeviceSpec::rtx3090(),
        Some("4090") => DeviceSpec::rtx4090(),
        Some("a100") => DeviceSpec::a100_40g(),
        _ => DeviceSpec::rtx4070_super(),
    };
    println!("device: {}\n", device.name);
    println!(
        "{:>6} {:>6} {:>6} | {:>10} {:>10} {:>10} {:>10} {:>10}",
        "m", "k", "n", "samoyeds", "venom", "cusparselt", "cublas", "sputnik"
    );
    for &size in &[512usize, 1024, 2048, 4096, 8192] {
        let (m, k, n) = (size, 4096, size);
        let problem = GemmProblem::samoyeds(m, k, n, n, SamoyedsConfig::DEFAULT);
        let dense = GemmProblem::dense(m, k, n);
        let t_s = SamoyedsKernel::new(device.clone()).stats(&problem).time_ms;
        let t_v = VenomSpmm::new(device.clone()).stats(&dense).time_ms;
        let t_n = NmSpmm::new(device.clone()).stats(&dense).time_ms;
        let t_d = DenseGemm::new(device.clone()).stats(&dense).time_ms;
        let t_c = CsrSpmm::new(device.clone()).stats(&dense, 0.75).time_ms;
        println!(
            "{m:>6} {k:>6} {n:>6} | {t_s:>8.3}ms {t_v:>8.3}ms {t_n:>8.3}ms {t_d:>8.3}ms {t_c:>8.3}ms"
        );
    }
    println!("\n(times are cost-model predictions; lower is better)");
}
