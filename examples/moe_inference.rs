//! MoE inference walkthrough: build a small MoE layer functionally (router +
//! experts), execute it through the reference data flow and through the
//! Samoyeds kernel path, then compare the *predicted* MoE-layer time of every
//! execution engine on a real model configuration (Mixtral-8x7B).
//!
//! Run with `cargo run --release --example moe_inference`.

use samoyeds::gpu_sim::DeviceSpec;
use samoyeds::moe::config::MoeModelConfig;
use samoyeds::moe::engines::{Engine, EngineKind};
use samoyeds::moe::expert::ExpertWeights;
use samoyeds::moe::router::TopKRouter;
use samoyeds::sparse::samoyeds::SamoyedsConfig;
use samoyeds::sparse::DenseMatrix;

fn main() {
    let device = DeviceSpec::rtx4070_super();

    // --- Functional path on a tiny configuration -------------------------
    let tiny = MoeModelConfig::tiny_test();
    let experts: Vec<ExpertWeights> = (0..tiny.num_experts)
        .map(|e| ExpertWeights::random(&tiny, e, 7))
        .collect();
    let pruned: Vec<_> = experts
        .iter()
        .map(|w| w.prune_samoyeds(SamoyedsConfig::DEFAULT).unwrap())
        .collect();
    let tokens = 32;
    let x = DenseMatrix::random(tiny.hidden_size, tokens, 9);
    let plan = TopKRouter::for_config(&tiny, 11).route(tokens);

    let dense_out = Engine::forward_reference(&experts, &x, &plan).unwrap();
    let sparse_out = Engine::forward_samoyeds(&device, &pruned, &x, &plan).unwrap();
    let rel = dense_out
        .add(&sparse_out.scale(-1.0))
        .unwrap()
        .frobenius_norm()
        / dense_out.frobenius_norm();
    println!(
        "tiny MoE layer ({} experts, top-{}, {} tokens): dense vs 75%-sparse output relative error {:.3}",
        tiny.num_experts, tiny.top_k, tokens, rel
    );

    // --- Predicted engine comparison on Mixtral-8x7B ---------------------
    let cfg = MoeModelConfig::mixtral_8x7b();
    let tokens = 4096;
    let plan = TopKRouter::for_config(&cfg, 42).route(tokens);
    println!(
        "\n{} MoE layer, {} tokens, predicted on {}:",
        cfg.name, tokens, device.name
    );
    let baseline = Engine::new(EngineKind::Transformers, device.clone())
        .moe_layer_cost(&cfg, tokens, &plan)
        .time_ms;
    for kind in EngineKind::all() {
        let cost = Engine::new(kind, device.clone()).moe_layer_cost(&cfg, tokens, &plan);
        if cost.supported {
            println!(
                "  {:<13} {:>8.2} ms  ({:.2}x vs Transformers, {:.2} GiB weights)",
                kind.name(),
                cost.time_ms,
                baseline / cost.time_ms,
                cost.weight_bytes / (1024.0 * 1024.0 * 1024.0)
            );
        } else {
            println!("  {:<13} not supported (NS)", kind.name());
        }
    }
}
