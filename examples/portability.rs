//! Portability example (§6.6): port the RTX 4070 Super kernel configuration
//! to the other modeled GPUs directly, then apply the Table 6 adaptation rule
//! and show how many problem sizes improve.
//!
//! Run with `cargo run --release --example portability`.

use samoyeds::gpu_sim::DeviceSpec;
use samoyeds::kernels::autotune::{adapt_for_device, suggested_adaptation};
use samoyeds::kernels::samoyeds_kernel::SamoyedsKernel;
use samoyeds::kernels::spmm_nm::NmSpmm;
use samoyeds::kernels::{GemmProblem, TilingConfig};
use samoyeds::sparse::samoyeds::SamoyedsConfig;

fn main() {
    let sizes = [1024usize, 2048, 4096, 8192];
    for device in DeviceSpec::portability_set() {
        let adaptation = suggested_adaptation(&device);
        let adapted = adapt_for_device(&device);
        let mut improved = 0usize;
        let mut total = 0usize;
        let mut speedups = Vec::new();
        for &m in &sizes {
            for &n in &sizes {
                let problem = GemmProblem::samoyeds(m, 4096, n, n, SamoyedsConfig::DEFAULT);
                let dense = GemmProblem::dense(m, 4096, n);
                let ported = SamoyedsKernel::new(device.clone())
                    .with_tiling(TilingConfig::DEFAULT_4070S)
                    .stats(&problem)
                    .time_ms;
                let tuned = SamoyedsKernel::new(device.clone())
                    .with_tiling(adapted)
                    .stats(&problem)
                    .time_ms;
                let cusparselt = NmSpmm::new(device.clone()).stats(&dense).time_ms;
                speedups.push(cusparselt / ported);
                if tuned < ported * 0.99 {
                    improved += 1;
                }
                total += 1;
            }
        }
        let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
        println!(
            "{:<32} direct-port speedup over cuSPARSELt: {:.2}x | adaptation {:?} improves {}/{} cases",
            device.name, avg, adaptation, improved, total
        );
    }
}
