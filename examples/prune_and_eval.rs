//! Pruning and accuracy example: prune the proxy models into every format the
//! paper compares (dense, unstructured, VENOM, Samoyeds configurations) with
//! magnitude, WoodFisher-style and SparseGPT-style saliency, and print the
//! Table 4 / Table 5 style report.
//!
//! Run with `cargo run --release --example prune_and_eval`.

use samoyeds::pruning::accuracy::{ProxyTask, PruneMethod};
use samoyeds::sparse::prune::PruneFormat;
use samoyeds::sparse::samoyeds::SamoyedsConfig;
use samoyeds::sparse::venom::VenomConfig;

fn main() {
    let formats: Vec<(&str, PruneFormat)> = vec![
        ("dense", PruneFormat::Dense),
        (
            "unstructured-75%",
            PruneFormat::Unstructured { sparsity: 0.75 },
        ),
        (
            "venom-64:4:8",
            PruneFormat::Venom(VenomConfig { v: 64, n: 4, m: 8 }),
        ),
        (
            "samoyeds-(1,2,16)",
            PruneFormat::Samoyeds(SamoyedsConfig::N1_M2_V16),
        ),
        (
            "samoyeds-(1,2,32)",
            PruneFormat::Samoyeds(SamoyedsConfig::N1_M2_V32),
        ),
        (
            "samoyeds-(4,8,32)",
            PruneFormat::Samoyeds(SamoyedsConfig::N4_M8_V32),
        ),
        (
            "samoyeds-(8,16,32)",
            PruneFormat::Samoyeds(SamoyedsConfig::N8_M16_V32),
        ),
    ];

    println!("== QA proxy (Table 4 style, F1, higher is better) ==");
    let bert = ProxyTask::bert_like("Bert-base (proxy)", 3);
    for (label, fmt) in &formats {
        let r = bert.evaluate(*fmt, PruneMethod::WoodFisher).unwrap();
        println!(
            "  {label:<20} F1 {:>6.2}   retained energy {:>5.1}%",
            r.f1,
            r.retained_energy * 100.0
        );
    }

    println!("\n== LM proxies (Table 5 style, perplexity, lower is better) ==");
    for task in [ProxyTask::tiny_llama_like(7), ProxyTask::qwen2_like(8)] {
        println!("  {}:", task.name());
        for (label, fmt) in &formats {
            for method in [PruneMethod::Magnitude, PruneMethod::SparseGpt] {
                let r = task.evaluate(*fmt, method).unwrap();
                println!(
                    "    {label:<20} {:<10} ppl {:>5.2}  recon err {:.3}",
                    format!("{method:?}"),
                    r.perplexity,
                    r.reconstruction_error
                );
            }
        }
    }
}
