//! Quickstart: prune a weight matrix into the Samoyeds dual-side format, run
//! the sparse-sparse kernel against a routed (column-sparse) input, check the
//! result against the dense reference and print the predicted GPU statistics.
//!
//! Run with `cargo run --release --example quickstart`.

use samoyeds::gpu_sim::DeviceSpec;
use samoyeds::kernels::samoyeds_kernel::SamoyedsKernel;
use samoyeds::sparse::samoyeds::SamoyedsConfig;
use samoyeds::sparse::{DenseMatrix, SamoyedsWeight, SelInput, SelectionArray, SparseFormat};

fn main() {
    // 1. A dense expert weight (256 x 512) and a batch of 96 tokens, of which
    //    the router selected every third one for this expert.
    let dense_weight = DenseMatrix::random(256, 512, 1);
    let activations = DenseMatrix::random(512, 96, 2);
    let sel = SelectionArray::new(96, (0..96).step_by(3).map(|i| i as u32).collect()).unwrap();

    // 2. Prune the weight into the Samoyeds (N,M,V) = (1,2,32) format: 75%
    //    sparsity encoded as {data, indices, metadata}.
    let weight = SamoyedsWeight::prune_from_dense(&dense_weight, SamoyedsConfig::DEFAULT).unwrap();
    println!(
        "weight: {}x{} -> {} compressed values ({:.1}% sparsity, {:.2}x compression)",
        weight.rows(),
        weight.cols(),
        weight.data().len(),
        weight.sparsity() * 100.0,
        weight.compression_ratio(true),
    );

    // 3. Run the dual-side sparse kernel on the simulated RTX 4070 Super.
    let device = DeviceSpec::rtx4070_super();
    let kernel = SamoyedsKernel::new(device);
    let input = SelInput::new(activations.clone(), sel.clone()).unwrap();
    let (output, stats) = kernel.execute(&weight, &input).unwrap();

    // 4. Verify against the dense reference on the gathered columns.
    let gathered = activations.select_columns(&sel.indices_usize()).unwrap();
    let reference = weight.to_dense().matmul(&gathered).unwrap();
    assert!(output.allclose(&reference, 1e-3, 1e-3));
    println!(
        "output {}x{} verified against the dense reference (max diff {:.2e})",
        output.rows(),
        output.cols(),
        output.max_abs_diff(&reference)
    );

    // 5. Predicted execution statistics on the simulated GPU.
    println!(
        "predicted on {}: {:.3} ms, {:.1} TFLOPS achieved, {:.1} MiB DRAM traffic, occupancy {:.0}%",
        stats.device,
        stats.time_ms,
        stats.achieved_tflops,
        stats.dram_bytes / (1024.0 * 1024.0),
        stats.occupancy_fraction * 100.0
    );
}
