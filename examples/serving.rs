//! Continuous-batching serving walkthrough: every execution engine serves
//! the same Poisson request trace through the continuous-batching scheduler,
//! and the report compares throughput (tokens/s) and request-latency
//! percentiles (p50/p95/p99) per engine.
//!
//! Run with `cargo run --release --example serving [model]` where `model` is
//! one of `qwen2` (default), `deepseek`, `minicpm`.

use samoyeds::gpu_sim::DeviceSpec;
use samoyeds::moe::config::MoeModelConfig;
use samoyeds::moe::engines::EngineKind;
use samoyeds::serve::{render_markdown, ExecutionBackend, ServingSimulator, TraceConfig};

fn main() {
    let model = match std::env::args().nth(1).as_deref() {
        Some("deepseek") => MoeModelConfig::deepseek_moe(),
        Some("minicpm") => MoeModelConfig::minicpm_moe(),
        _ => MoeModelConfig::qwen2_moe(),
    };
    let trace = TraceConfig {
        num_requests: 64,
        arrival_rate_rps: 8.0,
        prompt_len_range: (64, 512),
        output_len_range: (16, 64),
        seed: 42,
    };
    println!(
        "trace: {} requests, ~{} req/s, prompts {}..={} tokens, outputs {}..={} tokens\n",
        trace.num_requests,
        trace.arrival_rate_rps,
        trace.prompt_len_range.0,
        trace.prompt_len_range.1,
        trace.output_len_range.0,
        trace.output_len_range.1,
    );

    // On the A100-40G every engine holds the full model, so the comparison
    // isolates execution speed under continuous batching.
    let engines = EngineKind::all();
    for device in [DeviceSpec::a100_40g(), DeviceSpec::rtx4070_super()] {
        let sim = ServingSimulator::new(device.clone(), model.clone()).with_trace(trace.clone());
        // Every engine here is a SingleGpuBackend behind the scheduler's
        // ExecutionBackend trait; swap in dist::ClusterBackend for a pod.
        println!("backend: {}", sim.backend(EngineKind::Samoyeds).describe());
        let metrics = sim.compare(&engines);
        for line in render_markdown(&model.name, &device.name, &metrics) {
            println!("{line}");
        }

        let by_kind = |k: EngineKind| metrics.iter().find(|m| m.engine == k).unwrap();
        let samoyeds = by_kind(EngineKind::Samoyeds);
        let transformers = by_kind(EngineKind::Transformers);
        if samoyeds.servable && transformers.servable {
            println!(
                "-> Samoyeds vs Transformers: {:.2}x throughput, {:.2}x lower p95 latency\n",
                samoyeds.output_tokens_per_s / transformers.output_tokens_per_s,
                transformers.request_latency.p95_ms / samoyeds.request_latency.p95_ms,
            );
        } else if samoyeds.servable {
            println!(
                "-> only Samoyeds holds the full model in {} GiB; dense engines OOM\n",
                device.mem_capacity_gib,
            );
        }
    }
}
