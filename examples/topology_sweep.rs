//! Hierarchical topology sweep: the same 8-GPU expert-parallel fleet and
//! the same skewed routing plan, priced over three interconnect layouts —
//! one flat NVLink island, 2×4 NVLink islands stitched by an InfiniBand
//! NDR spine, and 4×2 PCIe hosts on the same spine — under dense, VENOM
//! and Samoyeds weights. The point: the moment a fleet outgrows one NVLink
//! island, roughly half of every dispatch/combine all-to-all crosses a
//! fabric an order of magnitude slower, and the spine — not compute, not
//! NVLink — becomes the straggler. Island-aware hot-expert replication
//! (`PlacementStrategy::ReplicateHotPerIsland`) keeps the hottest experts'
//! traffic inside the islands and pulls bytes back off the spine.
//!
//! Run with `cargo run --release --example topology_sweep [model]` where
//! `model` is one of `qwen2` (default), `deepseek`, `mixtral`.

use samoyeds::dist::{
    render_topology_placement, ClusterConfig, ClusterEngine, ClusterSimulator, ClusterTopology,
    LinkSpec, PlacementStrategy, TopologySweepReport,
};
use samoyeds::gpu_sim::DeviceSpec;
use samoyeds::moe::config::MoeModelConfig;
use samoyeds::moe::router::TopKRouter;

fn main() {
    let model = match std::env::args().nth(1).as_deref() {
        Some("deepseek") => MoeModelConfig::deepseek_moe(),
        Some("mixtral") => MoeModelConfig::mixtral_8x7b(),
        _ => MoeModelConfig::qwen2_moe(),
    };

    // The full sweep: three layouts x three engines, one shared skewed plan.
    let report = TopologySweepReport::sweep(&model, 4096, 1.5, 42);
    for line in report.render_markdown() {
        println!("{line}");
    }
    match report.spine_bound_contrast() {
        Some((hier, flat, spine)) => println!(
            "\n-> spine-bound: 2×4 NVLink+IB pays {hier:.3} ms/layer of collectives \
             ({spine:.3} ms on the spine alone) where flat NVLink pays {flat:.3} ms\n"
        ),
        None => println!("\n-> no spine-bound contrast for this model\n"),
    }

    // Topology-aware placement on the 2x4 layout: one replica of each hot
    // expert per island keeps its tokens off the spine.
    let two_by_four =
        ClusterTopology::symmetric(2, 4, LinkSpec::nvlink3(), LinkSpec::infiniband_ndr())
            .expect("2x4 is a valid layout");
    for line in render_topology_placement(&model, &two_by_four, 4096, 1.5, 9) {
        println!("{line}");
    }

    // One cell in detail: the per-phase split of a single step.
    let plan = TopKRouter::for_config(&model, 42)
        .with_skew(1.5)
        .route(4096);
    let sim = ClusterSimulator::new(
        ClusterConfig::new(DeviceSpec::a100_40g(), 8, ClusterEngine::Samoyeds)
            .with_topology(two_by_four)
            .with_strategy(PlacementStrategy::ReplicateHotPerIsland { hot: 2 }),
        model.clone(),
    );
    if let Ok(step) = sim.step(&plan) {
        println!(
            "\n2×4 Samoyeds step: {:.2} ms/layer = {:.2} compute + {:.3} intra-island \
             + {:.3} spine ({:.1} MB crossing islands, {:.0}% of the step on the spine)",
            step.layer_time_ms,
            step.straggler_ms(),
            step.intra_island_ms,
            step.spine_ms,
            step.cross_island_bytes / 1e6,
            step.spine_fraction() * 100.0,
        );
    }

    // A consumer fleet in its natural form factor: the device's node
    // boundary (2 cards per PCIe host) decides the islands automatically.
    let consumer = ClusterSimulator::new(
        ClusterConfig::new(DeviceSpec::rtx4070_super(), 8, ClusterEngine::Samoyeds)
            .with_node_topology(),
        model,
    );
    if let Ok(step) = consumer.step(&plan) {
        println!(
            "8x RTX 4070 Super deploys as {}: {:.3} ms/layer of collectives, \
             {:.0}% of the step on the spine",
            consumer.topology().name(),
            step.all_to_all_ms,
            step.spine_fraction() * 100.0,
        );
    }
}
