//! Facade crate for the Samoyeds reproduction.
//!
//! Re-exports every workspace crate under one namespace so that examples,
//! integration tests and downstream users can write `samoyeds::kernels::…`
//! instead of depending on each member crate individually.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured comparison of every table and figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use samoyeds_dist as dist;
pub use samoyeds_gpu_sim as gpu_sim;
pub use samoyeds_kernels as kernels;
pub use samoyeds_moe as moe;
pub use samoyeds_pruning as pruning;
pub use samoyeds_serve as serve;
pub use samoyeds_sparse as sparse;
pub use samoyeds_sptc as sptc;

/// The crate version (matches every workspace member).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_exposed() {
        assert!(!super::VERSION.is_empty());
    }
}
