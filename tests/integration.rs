//! Cross-crate integration tests: the full pipeline from dense weights to
//! pruned formats, kernels, MoE engines and experiment reports.

use samoyeds::gpu_sim::DeviceSpec;
use samoyeds::kernels::gemm_dense::DenseGemm;
use samoyeds::kernels::samoyeds_kernel::{SamoyedsKernel, SamoyedsOptions};
use samoyeds::kernels::GemmProblem;
use samoyeds::moe::config::MoeModelConfig;
use samoyeds::moe::engines::{Engine, EngineKind};
use samoyeds::moe::expert::ExpertWeights;
use samoyeds::moe::memory::{batch_experiment_seq_len, max_batch_size};
use samoyeds::moe::router::TopKRouter;
use samoyeds::pruning::accuracy::{ProxyTask, PruneMethod};
use samoyeds::sparse::prune::PruneFormat;
use samoyeds::sparse::samoyeds::SamoyedsConfig;
use samoyeds::sparse::{DenseMatrix, SamoyedsWeight, SelInput, SparseFormat};

#[test]
fn end_to_end_prune_execute_verify() {
    // Dense weight -> Samoyeds format -> dual-side kernel -> verified output.
    let dense = DenseMatrix::random(128, 256, 42);
    let weight = SamoyedsWeight::prune_from_dense(&dense, SamoyedsConfig::DEFAULT).unwrap();
    assert!((weight.sparsity() - 0.75).abs() < 0.02);

    let tokens = DenseMatrix::random(256, 48, 43);
    let input = SelInput::dense(tokens.clone());
    let kernel = SamoyedsKernel::new(DeviceSpec::rtx4070_super());
    let (out, stats) = kernel.execute(&weight, &input).unwrap();
    let reference = weight.to_dense().matmul(&tokens).unwrap();
    assert!(out.allclose(&reference, 1e-3, 1e-3));
    assert!(stats.time_ms > 0.0);
    assert!(stats.achieved_tflops > 0.0);
}

#[test]
fn kernel_level_ordering_holds_on_realistic_shapes() {
    // On every Table-2 expert shape the Samoyeds kernel beats cuBLAS by a
    // healthy factor (the Figure 12 "realistic benchmark" claim).
    let dev = DeviceSpec::rtx4070_super();
    for cfg in MoeModelConfig::table2() {
        let problem = GemmProblem::samoyeds(
            cfg.intermediate_size,
            cfg.hidden_size,
            4096,
            4096,
            SamoyedsConfig::DEFAULT,
        );
        let dense = GemmProblem::dense(cfg.intermediate_size, cfg.hidden_size, 4096);
        let t_s = SamoyedsKernel::new(dev.clone()).stats(&problem).time_ms;
        let t_d = DenseGemm::new(dev.clone()).stats(&dense).time_ms;
        let speedup = t_d / t_s;
        assert!(
            speedup > 1.5 && speedup < 8.0,
            "{}: speedup over cuBLAS {speedup}",
            cfg.name
        );
    }
}

#[test]
fn moe_engines_rank_consistently_across_models() {
    let dev = DeviceSpec::rtx4070_super();
    for cfg in [
        MoeModelConfig::mixtral_8x7b(),
        MoeModelConfig::minicpm_moe(),
        MoeModelConfig::deepseek_moe(),
    ] {
        let tokens = 2048;
        let plan = TopKRouter::for_config(&cfg, 5).route(tokens);
        let time = |kind| {
            Engine::new(kind, dev.clone())
                .moe_layer_cost(&cfg, tokens, &plan)
                .time_ms
        };
        let samoyeds = time(EngineKind::Samoyeds);
        assert!(samoyeds < time(EngineKind::Transformers), "{}", cfg.name);
        assert!(samoyeds < time(EngineKind::VllmDs), "{}", cfg.name);
        assert!(samoyeds < time(EngineKind::MegaBlocks), "{}", cfg.name);
        assert!(samoyeds < time(EngineKind::Pit), "{}", cfg.name);
    }
}

#[test]
fn functional_moe_layer_matches_between_engines_on_pruned_weights() {
    let cfg = MoeModelConfig::tiny_test();
    let device = DeviceSpec::rtx4070_super();
    let experts: Vec<ExpertWeights> = (0..cfg.num_experts)
        .map(|e| ExpertWeights::random(&cfg, e, 21))
        .collect();
    let pruned: Vec<_> = experts
        .iter()
        .map(|w| w.prune_samoyeds(SamoyedsConfig::DEFAULT).unwrap())
        .collect();
    let pruned_dense: Vec<ExpertWeights> = pruned
        .iter()
        .map(|p| ExpertWeights {
            gate: p.gate.to_dense(),
            up: p.up.to_dense(),
            down: p.down.to_dense(),
            activation: p.activation,
        })
        .collect();
    let x = DenseMatrix::random(cfg.hidden_size, 16, 22);
    let plan = TopKRouter::for_config(&cfg, 23).route(16);
    let reference = Engine::forward_reference(&pruned_dense, &x, &plan).unwrap();
    let kernel_path = Engine::forward_samoyeds(&device, &pruned, &x, &plan).unwrap();
    assert!(
        kernel_path.allclose(&reference, 1e-2, 1e-2),
        "max diff {}",
        kernel_path.max_abs_diff(&reference)
    );
}

#[test]
fn breakdown_and_memory_claims_hold_together() {
    // The optimisation breakdown (Figure 17) and the max-batch claim
    // (Table 3) both hold for the same model on the same device.
    let dev = DeviceSpec::rtx4070_super();
    let cfg = MoeModelConfig::qwen2_moe();
    let plan = TopKRouter::for_config(&cfg, 9).route(4096);
    let step = |opts| {
        Engine::new(EngineKind::Samoyeds, dev.clone())
            .with_samoyeds_options(opts)
            .moe_layer_cost(&cfg, 4096, &plan)
            .time_ms
    };
    assert!(step(SamoyedsOptions::FULL) < step(SamoyedsOptions::WEIGHT_ONLY));

    let seq = batch_experiment_seq_len(&cfg);
    let samoyeds_batch = max_batch_size(&dev, EngineKind::Samoyeds, &cfg, seq);
    let transformers_batch = max_batch_size(&dev, EngineKind::Transformers, &cfg, seq);
    assert!(samoyeds_batch > transformers_batch);
}

#[test]
fn accuracy_pipeline_runs_for_every_method() {
    let task = ProxyTask::bert_like("integration", 1);
    for method in [
        PruneMethod::Magnitude,
        PruneMethod::WoodFisher,
        PruneMethod::SparseGpt,
    ] {
        let report = task
            .evaluate(PruneFormat::Samoyeds(SamoyedsConfig::DEFAULT), method)
            .unwrap();
        assert!(report.f1 > 50.0 && report.f1 <= 100.0);
        assert!(report.retained_energy > 0.5);
    }
}

#[test]
fn experiment_harness_smoke() {
    use samoyeds_bench::{run_experiment, Experiment};
    let rows = run_experiment(Experiment::Table3MaxBatch);
    assert!(rows.len() >= 8);
    assert!(rows.iter().any(|r| r.contains("Mixtral-8x22B")));
    let rows = run_experiment(Experiment::Fig14MoeLayer);
    assert!(rows.iter().any(|r| r.contains("NS")));
}
