//! Minimal stand-in for `criterion` (see `vendor/README.md`).
//!
//! Supports the subset the workspace benches use: `Criterion::bench_function`,
//! `benchmark_group` + `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! `black_box` and the `criterion_group!` / `criterion_main!` macros. Each
//! benchmark is warmed up, timed for a short budget and reported as one line
//! of mean time per iteration — no statistics, plots or baselines.

use std::time::{Duration, Instant};

/// Opaque wrapper defeating constant-propagation (std's `black_box`).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs the closure under timing.
#[derive(Debug, Default)]
pub struct Bencher {
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Time `f`, storing the mean per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up.
        for _ in 0..3 {
            black_box(f());
        }
        let budget = Duration::from_millis(50);
        let started = Instant::now();
        let mut iters = 0u64;
        while started.elapsed() < budget && iters < 1000 {
            black_box(f());
            iters += 1;
        }
        let elapsed = started.elapsed();
        self.iters = iters.max(1);
        self.mean_ns = elapsed.as_nanos() as f64 / self.iters as f64;
    }
}

fn report(name: &str, bencher: &Bencher) {
    let mean = bencher.mean_ns;
    let (value, unit) = if mean >= 1e9 {
        (mean / 1e9, "s")
    } else if mean >= 1e6 {
        (mean / 1e6, "ms")
    } else if mean >= 1e3 {
        (mean / 1e3, "µs")
    } else {
        (mean, "ns")
    };
    println!(
        "{name:<60} time: {value:>10.3} {unit}/iter ({} iters)",
        bencher.iters
    );
}

/// Identifier for one parameterised benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `name/parameter`, matching criterion's display convention.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            full: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmark `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id.full), &bencher);
        self
    }

    /// Benchmark `f`, labelled by `id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher);
        self
    }

    /// End the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmark one closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(id, &bencher);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Bundle benchmark functions into a group runner (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running every group (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| black_box(2u64 + 2));
        assert!(b.mean_ns > 0.0);
        assert!(b.iters >= 1);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        c.bench_function("four", |b| b.iter(|| 2 + 2));
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("x", 1), &3usize, |b, &v| b.iter(|| v * 2));
        g.finish();
    }
}
