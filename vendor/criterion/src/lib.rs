//! Minimal stand-in for `criterion` (see `vendor/README.md`).
//!
//! Supports the subset the workspace benches use: `Criterion::bench_function`,
//! `benchmark_group` + `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! `black_box` and the `criterion_group!` / `criterion_main!` macros. Each
//! benchmark is warmed up, timed for a short budget and reported as one line
//! of mean time per iteration — no statistics, plots or baselines.
//!
//! Additionally, when the `BENCH_JSON` environment variable names a path,
//! every benchmark result is recorded and [`finalize_benchmarks`] (called by
//! the generated `criterion_main!`) writes them all as one JSON document —
//! the `BENCH_*.json` perf-trajectory artifact CI commits and regresses
//! against (see `samoyeds-bench`'s `perf` module and `bench_guard` binary).

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Opaque wrapper defeating constant-propagation (std's `black_box`).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs the closure under timing.
#[derive(Debug, Default)]
pub struct Bencher {
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Time `f`, storing the mean per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up. One pass is enough for the deterministic analytical
        // models benched here, and it keeps heavyweight cells (the
        // million-request fleet traces) affordable.
        black_box(f());
        let budget = Duration::from_millis(50);
        let started = Instant::now();
        let mut iters = 0u64;
        while started.elapsed() < budget && iters < 1000 {
            black_box(f());
            iters += 1;
        }
        let elapsed = started.elapsed();
        self.iters = iters.max(1);
        self.mean_ns = elapsed.as_nanos() as f64 / self.iters as f64;
    }
}

/// One recorded benchmark result, destined for the `BENCH_JSON` document.
#[derive(Debug, Clone)]
struct BenchRecord {
    name: String,
    mean_ns: f64,
    iters: u64,
}

fn records() -> &'static Mutex<Vec<BenchRecord>> {
    static RECORDS: OnceLock<Mutex<Vec<BenchRecord>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Write every recorded benchmark to the path named by the `BENCH_JSON`
/// environment variable, one `{"name", "mean_ns", "iters"}` object per
/// bench. A no-op when the variable is unset. Called automatically by the
/// `main` that `criterion_main!` generates, after all groups have run.
pub fn finalize_benchmarks() {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let records = records().lock().expect("bench records poisoned");
    let mut doc = String::from("{\n  \"schema\": 1,\n  \"benches\": [\n");
    for (i, r) in records.iter().enumerate() {
        doc.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.3}, \"iters\": {}}}{}\n",
            json_escape(&r.name),
            r.mean_ns,
            r.iters,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    doc.push_str("  ]\n}\n");
    if let Err(err) = std::fs::write(&path, doc) {
        eprintln!("BENCH_JSON: could not write {path}: {err}");
    }
}

fn report(name: &str, bencher: &Bencher) {
    let mean = bencher.mean_ns;
    let (value, unit) = if mean >= 1e9 {
        (mean / 1e9, "s")
    } else if mean >= 1e6 {
        (mean / 1e6, "ms")
    } else if mean >= 1e3 {
        (mean / 1e3, "µs")
    } else {
        (mean, "ns")
    };
    println!(
        "{name:<60} time: {value:>10.3} {unit}/iter ({} iters)",
        bencher.iters
    );
    records()
        .lock()
        .expect("bench records poisoned")
        .push(BenchRecord {
            name: name.to_string(),
            mean_ns: bencher.mean_ns,
            iters: bencher.iters,
        });
}

/// Identifier for one parameterised benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `name/parameter`, matching criterion's display convention.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            full: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmark `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id.full), &bencher);
        self
    }

    /// Benchmark `f`, labelled by `id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher);
        self
    }

    /// End the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmark one closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(id, &bencher);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Bundle benchmark functions into a group runner (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running every group (criterion-compatible), then flush
/// the recorded results to `BENCH_JSON` if that variable is set.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::finalize_benchmarks();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| black_box(2u64 + 2));
        assert!(b.mean_ns > 0.0);
        assert!(b.iters >= 1);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        c.bench_function("four", |b| b.iter(|| 2 + 2));
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("x", 1), &3usize, |b, &v| b.iter(|| v * 2));
        g.finish();
    }
}
