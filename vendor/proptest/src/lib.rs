//! Minimal stand-in for `proptest` (see `vendor/README.md`).
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro (with an optional `#![proptest_config(..)]` header), `prop_assert*!`
//! macros, `Strategy` with `prop_map`, range and tuple strategies,
//! `any::<T>()` and `collection::vec`. Generation is seeded per test name and
//! case index, so failures are reproducible; there is **no shrinking** — a
//! failing case reports the raw inputs via the assertion message.

/// Per-test deterministic random source.
pub mod test_runner {
    /// SplitMix64-based generator seeded from the test name and case index.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a raw value.
        pub fn new(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9E3779B97F4A7C15,
            }
        }

        /// Seed deterministically from a test name and case index.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut hash: u64 = 0xcbf29ce484222325;
            for byte in test_name.as_bytes() {
                hash ^= *byte as u64;
                hash = hash.wrapping_mul(0x100000001b3);
            }
            Self::new(hash.wrapping_add(case.wrapping_mul(0x2545F4914F6CDD1D)))
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { strategy: self, f }
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        strategy: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.strategy.generate(rng))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128) as u64;
                    // Inclusive span; `span + 1` cannot overflow u64 for the
                    // integer widths used in tests.
                    (*self.start() as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let v = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                    // Rounding can land exactly on `end`; keep half-open.
                    if v < self.end {
                        v
                    } else {
                        self.end.next_down().max(self.start)
                    }
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E)(
        A, B, C, D, E, F
    ));
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            (rng.unit_f64() * 2.0 - 1.0) as f32 * 1e3
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.unit_f64() * 2.0 - 1.0) * 1e6
        }
    }

    /// Strategy produced by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive length bounds for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                lo: exact,
                hi: exact,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(range: std::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            Self {
                lo: range.start,
                hi: range.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *range.start(),
                hi: *range.end(),
            }
        }
    }

    /// Strategy producing `Vec<S::Value>` with length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector strategy with the given element strategy and length bounds.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Per-test configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Everything the property-test files import.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }` becomes
/// an ordinary `#[test]` running `cases` seeded random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case as u64,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut proptest_rng,
                        );
                    )*
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),*) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn tuples_and_map_compose(pair in (1usize..5, 1usize..5).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..=16).contains(&pair));
        }

        #[test]
        fn vec_exact_and_ranged_sizes(
            exact in crate::collection::vec(0u8..4, 16),
            ranged in crate::collection::vec(any::<bool>(), 0..8),
        ) {
            prop_assert_eq!(exact.len(), 16);
            prop_assert!(exact.iter().all(|&v| v < 4));
            prop_assert!(ranged.len() < 8);
        }
    }

    #[test]
    fn cases_are_deterministic_per_name_and_index() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_case("t", 0);
        let mut b = crate::test_runner::TestRng::for_case("t", 0);
        let mut c = crate::test_runner::TestRng::for_case("t", 1);
        let s = 0usize..1000;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
        let _ = s.generate(&mut c); // different stream, must not panic
    }
}
