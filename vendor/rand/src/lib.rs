//! Minimal stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the subset the workspace uses: `RngCore`, `SeedableRng`,
//! `Rng::{gen_range, gen_bool}` over half-open and inclusive ranges, and
//! `seq::SliceRandom::{shuffle, choose}`.

/// Core random-number source: 64 bits at a time.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be deterministically constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform in `[0, 1)` from 53 random mantissa bits.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A type that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Sample uniformly from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                low + (rng.next_u64() as u128 % span) as $t
            }
            #[inline]
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                low + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            #[inline]
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let v = low + (unit_f64(rng) as $t) * (high - low);
                // Rounding in the cast/multiply can land exactly on `high`;
                // keep the half-open contract.
                if v < high {
                    v
                } else {
                    high.next_down().max(low)
                }
            }
            #[inline]
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                Self::sample_range(rng, low, high)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`low..high` or `low..=high`).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice helpers (`rand::seq`).
pub mod seq {
    use super::RngCore;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let f: f32 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&u));
            let i: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = Counter(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
