//! Minimal stand-in for `rand_chacha` (see `vendor/README.md`).
//!
//! Provides a deterministic seeded generator under the `ChaCha8Rng` name the
//! workspace imports. The core is xoshiro256++ seeded through SplitMix64 —
//! **not** real ChaCha; only determinism and statistical quality matter for
//! the simulation workloads here, not the keystream.

use rand::{RngCore, SeedableRng};

/// Deterministic seeded PRNG (xoshiro256++ core under the ChaCha8Rng name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        Self {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn output_is_not_degenerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let v: Vec<u64> = (0..64).map(|_| rng.next_u64()).collect();
        let distinct: std::collections::HashSet<_> = v.iter().collect();
        assert_eq!(distinct.len(), v.len());
    }
}
