//! Minimal sequential stand-in for `rayon` (see `vendor/README.md`).
//!
//! `par_iter()` returns the ordinary std iterator, so every adaptor chain
//! (`map`, `filter`, `collect`, …) works unchanged — just without
//! parallelism, which is acceptable for the analytical cost-model sweeps the
//! workspace runs.

/// The rayon prelude: iterator-conversion traits.
pub mod prelude {
    /// `par_iter()` on `&self` — sequential fallback.
    pub trait IntoParallelRefIterator<'data> {
        /// Item yielded by the iterator.
        type Item: 'data;
        /// The iterator type (a std iterator here).
        type Iter: Iterator<Item = Self::Item>;

        /// Sequential stand-in for rayon's parallel iterator.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.as_slice().iter()
        }
    }

    /// `into_par_iter()` — sequential fallback.
    pub trait IntoParallelIterator {
        /// Item yielded by the iterator.
        type Item;
        /// The iterator type (a std iterator here).
        type Iter: Iterator<Item = Self::Item>;

        /// Sequential stand-in for rayon's parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = std::vec::IntoIter<T>;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: i32 = v.into_par_iter().sum();
        assert_eq!(sum, 10);
    }
}
