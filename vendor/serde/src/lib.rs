//! Minimal stand-in for `serde` (see `vendor/README.md`).
//!
//! Re-exports the no-op derive macros and declares the two marker traits so
//! that `use serde::{Deserialize, Serialize}` resolves. No type in the
//! workspace is ever serialized, so the traits carry no methods and the
//! derives implement nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait matching `serde::Serialize`'s name.
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize`'s name.
pub trait Deserialize<'de>: Sized {}

/// Marker trait matching `serde::de::DeserializeOwned`'s name.
pub trait DeserializeOwned {}
