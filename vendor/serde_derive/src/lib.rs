//! No-op stand-in for the `serde_derive` proc-macro crate.
//!
//! The workspace derives `Serialize` / `Deserialize` on its data types but
//! never actually serializes anything, so the derives can safely expand to
//! nothing. See `vendor/README.md`.

use proc_macro::TokenStream;

/// Expands to nothing: the workspace never serializes.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing: the workspace never deserializes.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
